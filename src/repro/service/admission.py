"""Admission control and load shedding for the placement service.

A long-lived service facing heavy traffic must refuse work it cannot
serve rather than queue without bound: an unbounded queue converts
overload into unbounded latency for *everyone*, while shedding at the
door keeps latency bounded for the jobs that are admitted and gives the
caller a structured, attributed reason to retry elsewhere or later.

The controller is deliberately tiny and synchronous — one decision per
submit, under the supervisor's lock — and knows three things: the queue
depth bound, per-tenant quotas (queued + running jobs per tenant), and
the service lifecycle state (``accepting`` → ``draining`` → ``closed``).
Draining is the graceful-shutdown half of admission: a draining service
sheds every new job with reason ``"draining"`` while the jobs already
admitted run to completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Shed reasons the controller can attach to a rejection.
SHED_REASONS = ("queue_full", "tenant_quota", "draining", "closed")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: Optional[str] = None  # one of SHED_REASONS when rejected


class AdmissionController:
    """Bounded-queue + per-tenant-quota + lifecycle admission policy.

    ``max_queue_depth`` bounds jobs *waiting* (queued or in retry
    backoff); running jobs have already been admitted and hold worker
    slots, not queue slots.  ``tenant_quota`` bounds each tenant's total
    in-flight load (queued + running), so one tenant cannot starve the
    rest even below the global bound; ``None`` disables quotas.
    """

    def __init__(
        self,
        max_queue_depth: int = 64,
        tenant_quota: Optional[int] = None,
    ):
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1 (or None), got {tenant_quota}"
            )
        self.max_queue_depth = max_queue_depth
        self.tenant_quota = tenant_quota
        self.state = "accepting"

    # -- lifecycle -------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; already-admitted jobs keep running."""
        if self.state == "accepting":
            self.state = "draining"

    def close(self) -> None:
        self.state = "closed"

    # -- policy ----------------------------------------------------------
    def decide(
        self,
        tenant: str,
        queue_depth: int,
        tenant_load: Dict[str, int],
    ) -> AdmissionDecision:
        """Admit or shed one job given the current load picture.

        *queue_depth* counts waiting jobs; *tenant_load* maps tenant to
        queued + running job count.
        """
        if self.state != "accepting":
            return AdmissionDecision(False, self.state)
        if queue_depth >= self.max_queue_depth:
            return AdmissionDecision(False, "queue_full")
        if (
            self.tenant_quota is not None
            and tenant_load.get(tenant, 0) >= self.tenant_quota
        ):
            return AdmissionDecision(False, "tenant_quota")
        return AdmissionDecision(True)


__all__ = ["AdmissionController", "AdmissionDecision", "SHED_REASONS"]
