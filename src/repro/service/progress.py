"""Per-job progress fan-out: the bridge from worker iterations to clients.

The placer already has an observer-gated per-iteration stats path (PR 7):
HPWL/force diagnostics are computed only when somebody is watching.  This
module extends that gating across the process boundary:

- a client subscribes to a job → the broker has a callback for it → the
  supervisor dispatches the job with ``stream_progress=True`` → the worker
  threads an ``iteration_hook`` into the placer → one small dict per
  transformation travels worker → supervisor → broker → subscriber;
- nobody subscribes → the payload flag stays ``False`` → the worker passes
  ``iteration_hook=None`` → the placer's ``observe`` gate stays closed and
  the per-iteration stats are never even computed.  Zero overhead is not a
  throttle, it is the absence of the code path.

Callbacks run inline where the supervisor publishes (under its condition
variable), so they must be non-blocking — enqueue and return.  Both
consumers honor that: the network server appends to a per-connection
outbox queue, the in-process client appends to a ``queue.Queue``.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

ProgressCallback = Callable[[Dict[str, Any]], None]

#: Event kinds a subscriber sees. ``progress`` is per-iteration; one
#: terminal ``result`` event always ends the stream.
PROGRESS_EVENT = "progress"
RESULT_EVENT = "result"


class ProgressBroker:
    """Thread-safe registry of per-job progress subscribers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._subs: Dict[str, List[Tuple[int, ProgressCallback]]] = {}
        self._ids = itertools.count(1)

    def subscribe(
        self, job_id: str, callback: ProgressCallback
    ) -> Tuple[str, int]:
        """Register *callback* for *job_id*; returns an opaque handle."""
        with self._lock:
            handle_id = next(self._ids)
            self._subs.setdefault(job_id, []).append((handle_id, callback))
            return (job_id, handle_id)

    def unsubscribe(self, handle: Optional[Tuple[str, int]]) -> None:
        if handle is None:
            return
        job_id, handle_id = handle
        with self._lock:
            subs = self._subs.get(job_id)
            if not subs:
                return
            subs[:] = [s for s in subs if s[0] != handle_id]
            if not subs:
                del self._subs[job_id]

    def has(self, job_id: str) -> bool:
        """True when at least one subscriber watches *job_id* — the gate
        the supervisor reads at dispatch time."""
        with self._lock:
            return bool(self._subs.get(job_id))

    def subscriber_count(self, job_id: str) -> int:
        with self._lock:
            return len(self._subs.get(job_id, ()))

    def publish(self, job_id: str, event: Dict[str, Any]) -> None:
        """Deliver one event to every subscriber of *job_id*.

        A callback that raises (e.g. its connection just died) is dropped
        from the registry instead of poisoning the publisher — the server
        cleans its own side up on disconnect, this is the backstop.
        """
        with self._lock:
            subs = list(self._subs.get(job_id, ()))
        dead = []
        for handle_id, callback in subs:
            try:
                callback(event)
            except Exception:  # noqa: BLE001 — subscriber death is routine
                dead.append((job_id, handle_id))
        for handle in dead:
            self.unsubscribe(handle)

    def close_job(self, job_id: str) -> None:
        """Drop every subscription of a terminal job."""
        with self._lock:
            self._subs.pop(job_id, None)


__all__ = [
    "PROGRESS_EVENT",
    "ProgressBroker",
    "ProgressCallback",
    "RESULT_EVENT",
]
