"""Open-loop load generation against the wire protocol.

The generator is **open-loop**: the arrival schedule is drawn up front
from a seeded exponential (Poisson-process) inter-arrival distribution
and submitted on that clock regardless of how the server is coping — the
methodologically honest way to measure a service under saturation
(closed-loop clients self-throttle and hide queueing collapse, the
coordinated-omission trap).  Latency is therefore measured from the
*scheduled* arrival time, not from when the submit call got around to
running.

Each arrival is one ``submit`` RPC over a per-tenant ``repro-wire/1``
connection, immediately followed by a ``result`` request that arms the
server-side terminal watcher; the client's reader thread timestamps the
asynchronous ``result`` frame.  Specs rotate through ``unique_specs``
distinct seeds, so a sustained run exercises the signature cache — the
first submit of each seed is a cold placement, every repeat should be a
hit, and the record cross-checks that every result of the same spec
carries the same positions hash (cache hits bit-identical to cold runs).

The outcome is a ``repro-service/2`` record (``kind: "loadgen"``) with
p50/p99/p999 latency, shed rate, cache hit rate and the server's own
report, ready for ``merge_service_record`` into the bench JSON.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..observability.events import latency_summary
from .jobs import SERVICE_SCHEMA

#: Loadgen records share the service schema family.
LOADGEN_SCHEMA = SERVICE_SCHEMA


@dataclass(frozen=True)
class LoadgenConfig:
    """Every knob of one load run."""

    #: Run length of the arrival schedule, seconds.
    duration_s: float = 30.0
    #: Mean offered arrival rate, requests/second (Poisson).
    rps: float = 20.0
    #: Tenant mix: ``{tenant: weight}``; one connection (and token) each.
    tenants: Dict[str, float] = field(default_factory=lambda: {"default": 1.0})
    #: Schedule/spec RNG seed — the whole run replays from it.
    seed: int = 0
    #: Placement source every job uses (bench size / suite name).
    source: str = "tiny"
    #: Number of distinct job seeds rotated through — the dedup knob:
    #: ``offered/unique_specs`` submits per signature, all but the first
    #: answerable from the cache.
    unique_specs: int = 8
    #: Per-job iteration cap (keeps cold runs short under load).
    max_iterations: Optional[int] = 8
    legalize: bool = True
    #: How long to wait after the last arrival for stragglers, seconds.
    drain_timeout_s: float = 60.0
    #: Per-RPC reply timeout, seconds.
    rpc_timeout_s: float = 30.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "duration_s": self.duration_s,
            "rps": self.rps,
            "tenants": dict(self.tenants),
            "seed": self.seed,
            "source": self.source,
            "unique_specs": self.unique_specs,
            "max_iterations": self.max_iterations,
            "legalize": self.legalize,
        }


def arrival_schedule(
    cfg: LoadgenConfig,
) -> List[Tuple[float, str, int]]:
    """The full run, precomputed: ``(at_s, tenant, spec_seed)`` tuples.

    Deterministic in ``cfg.seed`` — replaying a schedule against two
    server builds offers byte-identical load.
    """
    rng = random.Random(cfg.seed)
    names = list(cfg.tenants)
    weights = [float(cfg.tenants[t]) for t in names]
    schedule: List[Tuple[float, str, int]] = []
    t = 0.0
    while True:
        t += rng.expovariate(cfg.rps)
        if t >= cfg.duration_s:
            return schedule
        tenant = rng.choices(names, weights=weights, k=1)[0]
        schedule.append((t, tenant, rng.randrange(cfg.unique_specs)))


class _Tally:
    """Thread-shared run accounting (reader threads + scheduler)."""

    def __init__(self):
        self.lock = threading.Lock()
        #: job_id -> (scheduled_at_s, spec_seed, tenant, cached_submit)
        self.inflight: Dict[str, Tuple[float, int, str, bool]] = {}
        self.latencies: List[float] = []
        self.shed: Dict[str, int] = {}
        self.errors = 0
        self.completed = 0
        self.cached = 0
        self.failed_jobs = 0
        #: spec_seed -> set of positions hashes seen (must stay singleton).
        self.hashes: Dict[int, set] = {}
        self.all_done = threading.Event()
        self.expected = 0
        #: Set once the scheduler finished submitting; until then an empty
        #: inflight map means "not started", not "drained".
        self.all_armed = False

    def on_result_frame(self, t0: float, frame: Dict[str, Any]) -> None:
        now = time.monotonic()
        job_id = str(frame.get("job"))
        record = frame.get("record") or {}
        with self.lock:
            meta = self.inflight.pop(job_id, None)
            if meta is None:
                return
            scheduled_at, spec_seed, _tenant, cached = meta
            self.completed += 1
            if cached:
                self.cached += 1
            if record.get("state") == "done":
                self.latencies.append((now - t0) - scheduled_at)
                result = record.get("result") or {}
                digest = result.get("positions_hash")
                if digest is not None:
                    self.hashes.setdefault(spec_seed, set()).add(digest)
            else:
                self.failed_jobs += 1
            if self.all_armed and not self.inflight:
                self.all_done.set()


def run_loadgen(
    cfg: LoadgenConfig,
    host: str,
    port: int,
) -> Dict[str, Any]:
    """Drive one open-loop run against a listening server; returns the
    ``repro-service/2`` loadgen record."""
    from .net import WireClient, WireError

    schedule = arrival_schedule(cfg)
    tally = _Tally()
    t0 = time.monotonic()
    clients: Dict[str, WireClient] = {}
    try:
        for tenant in cfg.tenants:
            client = WireClient(
                host, port, token=tenant, timeout=cfg.rpc_timeout_s
            )
            client.on_result = (
                lambda frame, _t0=t0: tally.on_result_frame(_t0, frame)
            )
            clients[tenant] = client

        for i, (at_s, tenant, spec_seed) in enumerate(schedule):
            now = time.monotonic() - t0
            if at_s > now:
                time.sleep(at_s - now)
            job_id = f"lg{i:06d}"
            spec: Dict[str, Any] = {
                "id": job_id,
                "source": cfg.source,
                "seed": spec_seed,
                "legalize": cfg.legalize,
            }
            if cfg.max_iterations is not None:
                spec["max_iterations"] = cfg.max_iterations
            client = clients[tenant]
            try:
                reply = client._rpc({
                    "type": "submit", "spec": spec, "subscribe": False,
                })
                if reply.get("type") == "shed":
                    with tally.lock:
                        reason = str(reply.get("reason"))
                        tally.shed[reason] = tally.shed.get(reason, 0) + 1
                    continue
                with tally.lock:
                    tally.inflight[job_id] = (
                        at_s, spec_seed, tenant, bool(reply.get("cached")),
                    )
                    tally.expected += 1
                # Arm the terminal watcher; the result frame comes back
                # asynchronously and the reader thread timestamps it.
                client._rpc({"type": "result", "job": job_id})
            except WireError:
                with tally.lock:
                    tally.errors += 1
                    tally.inflight.pop(job_id, None)

        with tally.lock:
            tally.all_armed = True
            drained = not tally.inflight
        if drained:
            tally.all_done.set()
        tally.all_done.wait(cfg.drain_timeout_s)

        report: Optional[Dict[str, Any]] = None
        try:
            report = next(iter(clients.values())).report()
        except WireError:
            pass
    finally:
        for client in clients.values():
            client.close()

    wall = time.monotonic() - t0
    with tally.lock:
        offered = len(schedule)
        shed_total = sum(tally.shed.values())
        hash_conflicts = sorted(
            seed for seed, digests in tally.hashes.items()
            if len(digests) > 1
        )
        record = {
            "schema": LOADGEN_SCHEMA,
            "kind": "loadgen",
            "loadgen": cfg.to_dict(),
            "wall_seconds": round(wall, 3),
            "offered": offered,
            "offered_rps": round(offered / cfg.duration_s, 3),
            "completed": tally.completed,
            "failed": tally.failed_jobs,
            "errors": tally.errors,
            "timed_out_waiting": len(tally.inflight),
            "shed": shed_total,
            "shed_reasons": dict(tally.shed),
            "shed_rate": round(shed_total / offered, 6) if offered else None,
            "cache_hits": tally.cached,
            "cache_hit_rate": round(tally.cached / tally.completed, 6)
            if tally.completed else None,
            "latency": latency_summary(tally.latencies),
            # Bit-identity under caching: one positions hash per distinct
            # spec across every cold run and cache hit, or the run fails.
            "hash_check": {
                "distinct_specs": len(tally.hashes),
                "consistent": not hash_conflicts,
                "conflicting_specs": hash_conflicts,
            },
            "server": _server_excerpt(report),
        }
    return record


def _server_excerpt(report: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The server-report slice worth persisting next to client numbers."""
    if not report:
        return None
    return {
        "schema": report.get("schema"),
        "n_submitted": report.get("n_submitted"),
        "n_done": report.get("n_done"),
        "n_failed": report.get("n_failed"),
        "n_shed": report.get("n_shed"),
        "n_cache_hits": report.get("n_cache_hits"),
        "retries": report.get("retries"),
        "cache": report.get("cache"),
        "latency": report.get("latency"),
        "queue_depth_max": report.get("queue_depth_max"),
        "worker": report.get("worker"),
    }


__all__ = [
    "LOADGEN_SCHEMA",
    "LoadgenConfig",
    "arrival_schedule",
    "run_loadgen",
]
