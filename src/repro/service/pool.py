"""The supervised, persistent worker-process pool.

Why not ``ProcessPoolExecutor``?  Two reasons, both measured:

- **startup amortization** — the batch engine's tiny-job benchmark showed
  a 0.77x *measured* speedup against a 3.3x estimate: process startup
  (interpreter + numpy/scipy image) dominates small jobs.  A persistent
  pool pays that cost once per worker, not once per batch.
- **fault containment** — ``ProcessPoolExecutor`` declares the whole pool
  broken when one worker dies (``BrokenProcessPool``), failing every
  pending future.  A placement service must treat worker death as a
  routine, *per-worker* event: reap it, requeue its job, respawn the slot
  with capped exponential backoff, and keep serving.

Plumbing choices are all in service of kill-safety:

- one duplex :func:`multiprocessing.Pipe` per worker — no shared queue,
  so a SIGKILL can never leave a cross-worker lock held;
- :func:`multiprocessing.connection.wait` over every pipe *and* every
  process sentinel at once, so spontaneous deaths wake the supervisor
  immediately instead of on a poll interval;
- a per-worker shared heartbeat timestamp, beaten by a daemon thread in
  the worker, distinguishing "process alive but frozen" (SIGSTOP, C-level
  deadlock — heartbeat goes stale) from "job still legitimately
  computing" (heartbeat fresh; the *job watchdog* in the supervisor owns
  that case, because only it knows per-job deadlines).

The pool knows processes, pipes and time.  It does not know what a job
means — retry policy, priorities and admission live one level up in
:mod:`repro.service.supervisor`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Any, Dict, List, Optional, Tuple

from ..observability.events import EventLog
from ..parallel.engine import resolve_mp_context

#: Parent -> worker message tags.
_MSG_JOB = "job"
_MSG_STOP = "stop"
#: Worker -> parent message tags.
MSG_READY = "ready"
MSG_STARTED = "started"
MSG_DONE = "done"
MSG_PROGRESS = "progress"

#: Worker slot lifecycle states.
STARTING, IDLE, BUSY, DOWN, STOPPED = (
    "starting", "idle", "busy", "down", "stopped"
)


def _pool_worker_main(slot: int, worker_id: int, conn, heartbeat, init) -> None:
    """Worker process entry point (top-level: spawn/forkserver-picklable).

    Re-installs fault hooks (env specs first, then pool-level specs from
    *init*), starts the heartbeat thread, reports ready, then serves jobs
    until told to stop or the parent disappears.
    """
    import threading

    from ..core import health
    from ..parallel.engine import _execute_job
    from ..testing import faults

    faults.install_env_hooks()
    faults.install_process_faults(list(init.get("inject_faults", ())))

    if health._FAULT_HOOKS:
        health.fire_hook("worker_start", worker_id)  # slow_start chaos

    stop_beating = threading.Event()
    interval = float(init.get("heartbeat_interval", 0.1))

    def beat() -> None:
        while not stop_beating.is_set():
            heartbeat.value = time.monotonic()
            stop_beating.wait(interval)

    threading.Thread(target=beat, daemon=True, name="heartbeat").start()

    try:
        conn.send((MSG_READY, worker_id, os.getpid()))
        while True:
            message = conn.recv()
            if message[0] == _MSG_STOP:
                break
            _, token, payload = message
            if health._FAULT_HOOKS:
                health.fire_hook("worker_job", worker_id, token)
            conn.send((MSG_STARTED, token))
            progress = None
            if payload.get("stream_progress"):
                def progress(data, _token=token):
                    # Pipe sends are small and the parent drains eagerly;
                    # a send that fails means the parent is gone and the
                    # main recv loop will notice on its next call.
                    try:
                        conn.send((MSG_PROGRESS, _token, data))
                    except (OSError, ValueError, BrokenPipeError):
                        pass
            result = _execute_job(payload, progress=progress)
            conn.send((MSG_DONE, token, result))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away; nothing to report to
    finally:
        stop_beating.set()
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class WorkerDeath:
    """One worker-process death, spontaneous or supervisor-inflicted."""

    slot: int
    worker_id: int
    token: Optional[str]  # in-flight job token, if any
    exitcode: Optional[int]
    reason: str  # "died" | "job_timeout" | "hung" | "start_timeout" | ...
    restart_delay_s: float


@dataclass
class WorkerHandle:
    """Parent-side state of one worker slot."""

    slot: int
    worker_id: int = -1
    process: Any = None
    conn: Any = None
    heartbeat: Any = None
    state: str = DOWN
    token: Optional[str] = None
    dispatched_at: float = 0.0
    started_at: Optional[float] = None
    spawned_at: float = 0.0
    jobs_done: int = 0
    consecutive_failures: int = 0
    restart_not_before: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)


class WorkerPool:
    """N supervised worker slots with heartbeat/readiness bookkeeping."""

    def __init__(
        self,
        workers: int,
        *,
        mp_context: str = "auto",
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: float = 5.0,
        start_timeout: float = 30.0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        inject_faults: Tuple[Tuple[str, Dict[str, Any]], ...] = (),
        events: Optional[EventLog] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._ctx = resolve_mp_context(mp_context)
        self.mp_context = self._ctx.get_start_method()
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.start_timeout = start_timeout
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.inject_faults = tuple(inject_faults)
        self.events = events if events is not None else EventLog()
        self.handles = [WorkerHandle(slot=i) for i in range(workers)]
        self._next_worker_id = 0
        # Lifetime counters (spawns includes the initial fleet).
        self.spawns = 0
        self.deaths = 0
        self.restarts = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        for handle in self.handles:
            self._spawn(handle)

    def _spawn(self, handle: WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._ctx.Value("d", time.monotonic())
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        init = {
            "heartbeat_interval": self.heartbeat_interval,
            "inject_faults": self.inject_faults,
        }
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(handle.slot, worker_id, child_conn, heartbeat, init),
            name=f"repro-worker-{handle.slot}-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # our copy; the child keeps its own
        handle.worker_id = worker_id
        handle.process = process
        handle.conn = parent_conn
        handle.heartbeat = heartbeat
        handle.state = STARTING
        handle.token = None
        handle.started_at = None
        handle.spawned_at = time.monotonic()
        self.spawns += 1
        self.events.emit(
            "worker_spawn", slot=handle.slot, worker=worker_id,
            pid=process.pid,
        )

    def stop(self, timeout: float = 2.0) -> None:
        """Stop every worker: polite to the idle, SIGKILL to the rest."""
        for handle in self.handles:
            if handle.state in (IDLE, STARTING) and handle.conn is not None:
                try:
                    handle.conn.send((_MSG_STOP,))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in self.handles:
            if handle.process is None:
                continue
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
            handle.state = STOPPED

    # -- scheduling ------------------------------------------------------
    def idle_handles(self) -> List[WorkerHandle]:
        return [h for h in self.handles if h.state == IDLE]

    def alive_count(self) -> int:
        return sum(1 for h in self.handles if h.state in (STARTING, IDLE, BUSY))

    def dispatch(
        self, handle: WorkerHandle, token: str, payload: Dict[str, Any]
    ) -> None:
        """Send one job to an idle worker (caller picked the handle)."""
        if handle.state != IDLE:
            raise RuntimeError(
                f"dispatch to worker slot {handle.slot} in state "
                f"{handle.state!r}"
            )
        handle.conn.send((_MSG_JOB, token, payload))
        handle.state = BUSY
        handle.token = token
        handle.dispatched_at = time.monotonic()
        handle.started_at = None

    # -- observation -----------------------------------------------------
    def poll(
        self, timeout: float
    ) -> Tuple[List[Tuple[WorkerHandle, Tuple]], List[WorkerDeath]]:
        """Wait up to *timeout* for messages or deaths; process both.

        Messages update handle state (ready/started/done) before being
        returned, so the supervisor sees a consistent picture.  Deaths of
        non-stopped workers are reaped (state ``DOWN``, backoff armed).
        """
        waitables = []
        by_waitable = {}
        for handle in self.handles:
            if handle.state in (STARTING, IDLE, BUSY):
                by_waitable[handle.conn] = handle
                by_waitable[handle.process.sentinel] = handle
                waitables.extend((handle.conn, handle.process.sentinel))
        if not waitables:
            time.sleep(timeout)
            return [], []
        ready = connection.wait(waitables, timeout)
        messages: List[Tuple[WorkerHandle, Tuple]] = []
        maybe_dead: List[WorkerHandle] = []
        seen_dead = set()
        for waitable in ready:
            handle = by_waitable[waitable]
            if waitable is handle.conn:
                try:
                    while handle.conn.poll():
                        message = handle.conn.recv()
                        self._apply_message(handle, message)
                        messages.append((handle, message))
                except (EOFError, OSError):
                    if id(handle) not in seen_dead:
                        seen_dead.add(id(handle))
                        maybe_dead.append(handle)
            else:  # process sentinel became ready: the worker exited
                if id(handle) not in seen_dead:
                    seen_dead.add(id(handle))
                    maybe_dead.append(handle)
        deaths = []
        for handle in maybe_dead:
            # Drain any result the worker managed to send before dying —
            # a completed job must not be retried just because the worker
            # died immediately after reporting it.
            try:
                while handle.conn is not None and handle.conn.poll():
                    message = handle.conn.recv()
                    self._apply_message(handle, message)
                    messages.append((handle, message))
            except (EOFError, OSError):
                pass
            if handle.process is not None and not handle.process.is_alive():
                deaths.append(self._reap(handle, reason="died"))
        return messages, deaths

    def _apply_message(self, handle: WorkerHandle, message: Tuple) -> None:
        tag = message[0]
        if tag == MSG_READY:
            handle.state = IDLE
            self.events.emit(
                "worker_ready", slot=handle.slot, worker=handle.worker_id,
                startup_s=round(time.monotonic() - handle.spawned_at, 6),
            )
        elif tag == MSG_STARTED:
            if message[1] == handle.token:
                handle.started_at = time.monotonic()
        elif tag == MSG_DONE:
            if message[1] == handle.token:
                handle.token = None
                handle.state = IDLE
                handle.jobs_done += 1
                handle.consecutive_failures = 0  # survived a full job

    # -- failure handling ------------------------------------------------
    def kill(self, handle: WorkerHandle, reason: str) -> WorkerDeath:
        """SIGKILL a worker now (watchdog/chaos path) and reap it."""
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(5.0)
        return self._reap(handle, reason=reason)

    def _reap(self, handle: WorkerHandle, reason: str) -> WorkerDeath:
        token = handle.token
        exitcode = (
            handle.process.exitcode if handle.process is not None else None
        )
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        handle.consecutive_failures += 1
        delay = min(
            self.backoff_cap_s,
            self.backoff_base_s
            * (2.0 ** max(0, handle.consecutive_failures - 1)),
        )
        handle.restart_not_before = time.monotonic() + delay
        death = WorkerDeath(
            slot=handle.slot,
            worker_id=handle.worker_id,
            token=token,
            exitcode=exitcode,
            reason=reason,
            restart_delay_s=delay,
        )
        handle.state = DOWN
        handle.token = None
        self.deaths += 1
        self.events.emit(
            "worker_death", slot=handle.slot, worker=handle.worker_id,
            exitcode=exitcode, reason=reason, token=token,
            restart_delay_s=round(delay, 6),
        )
        return death

    def check_health(self, now: float) -> List[WorkerDeath]:
        """Kill frozen (stale-heartbeat) and stuck-starting workers.

        A *busy* worker with a fresh heartbeat is healthy here even if its
        job is slow — per-job wall-clock is the supervisor's watchdog.
        """
        deaths = []
        for handle in self.handles:
            if handle.state in (IDLE, BUSY):
                if now - handle.heartbeat.value > self.heartbeat_timeout:
                    deaths.append(self.kill(handle, reason="hung"))
            elif handle.state == STARTING:
                stale = now - handle.heartbeat.value > self.heartbeat_timeout
                if now - handle.spawned_at > self.start_timeout and stale:
                    deaths.append(self.kill(handle, reason="start_timeout"))
        return deaths

    def maybe_respawn(self, now: float) -> int:
        """Respawn DOWN slots whose backoff has elapsed; returns count."""
        respawned = 0
        for handle in self.handles:
            if handle.state == DOWN and now >= handle.restart_not_before:
                previous = handle.worker_id
                self._spawn(handle)
                self.restarts += 1
                respawned += 1
                self.events.emit(
                    "worker_restart", slot=handle.slot,
                    worker=handle.worker_id, previous_worker=previous,
                    restarts_in_a_row=handle.consecutive_failures,
                )
        return respawned

    def counters(self) -> Dict[str, int]:
        return {
            "spawns": self.spawns,
            "deaths": self.deaths,
            "restarts": self.restarts,
        }


__all__ = [
    "MSG_DONE",
    "MSG_PROGRESS",
    "MSG_READY",
    "MSG_STARTED",
    "WorkerDeath",
    "WorkerHandle",
    "WorkerPool",
]
