"""Fault-tolerant placement service: pool, supervisor, admission.

The batch engine (:mod:`repro.parallel`) runs a fixed list of jobs and
exits; this package keeps placing *indefinitely* under real-world failure
— worker processes that die, hang, start slowly, or tear a checkpoint
mid-write — without losing answers or changing them.  The guarantees:

- every admitted job either completes with an HPWL **bit-identical** to a
  serial run of the same spec (retries and cross-worker checkpoint
  migration included), or fails with a structured, attributed reason;
- jobs the service cannot serve are shed at admission with a reason, not
  queued without bound;
- every lifecycle transition is one event in a JSONL trace, and the
  summary report is computed from the same counters the trace writes.

Layering (each module only knows the one below):

- :mod:`~repro.service.pool` — supervised worker processes: pipes,
  heartbeats, sentinels, capped-backoff respawns;
- :mod:`~repro.service.supervisor` — priority queue, per-job watchdogs,
  retry policy, checkpoint migration, drain;
- :mod:`~repro.service.admission` — bounded queue, tenant quotas,
  lifecycle (accepting/draining/closed);
- :mod:`~repro.service.jobs` — job specs, retry policy, records.
"""

from .admission import AdmissionController, AdmissionDecision, SHED_REASONS
from .jobs import (
    FAILURE_CLASSES,
    AttemptRecord,
    JobRecord,
    JobState,
    RetryPolicy,
    SERVICE_SCHEMA,
    ServiceJob,
    SubmitResult,
    classify_failure,
)
from .pool import WorkerDeath, WorkerHandle, WorkerPool
from .supervisor import PlacementService, ServiceConfig, serve_jobs

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AttemptRecord",
    "FAILURE_CLASSES",
    "JobRecord",
    "JobState",
    "PlacementService",
    "RetryPolicy",
    "SERVICE_SCHEMA",
    "SHED_REASONS",
    "ServiceJob",
    "ServiceConfig",
    "SubmitResult",
    "WorkerDeath",
    "WorkerHandle",
    "WorkerPool",
    "classify_failure",
    "serve_jobs",
]
