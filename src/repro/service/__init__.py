"""Fault-tolerant placement service: pool, supervisor, admission.

The batch engine (:mod:`repro.parallel`) runs a fixed list of jobs and
exits; this package keeps placing *indefinitely* under real-world failure
— worker processes that die, hang, start slowly, or tear a checkpoint
mid-write — without losing answers or changing them.  The guarantees:

- every admitted job either completes with an HPWL **bit-identical** to a
  serial run of the same spec (retries and cross-worker checkpoint
  migration included), or fails with a structured, attributed reason;
- jobs the service cannot serve are shed at admission with a reason, not
  queued without bound;
- every lifecycle transition is one event in a JSONL trace, and the
  summary report is computed from the same counters the trace writes.

Layering (each module only knows the one below):

- :mod:`~repro.service.pool` — supervised worker processes: pipes,
  heartbeats, sentinels, capped-backoff respawns;
- :mod:`~repro.service.supervisor` — priority queue, per-job watchdogs,
  retry policy, checkpoint migration, result cache, drain;
- :mod:`~repro.service.admission` — bounded queue, tenant quotas,
  lifecycle (accepting/draining/closed);
- :mod:`~repro.service.jobs` — job specs, retry policy, records;
- :mod:`~repro.service.cache` — signature-keyed ``FlowResult`` LRU;
- :mod:`~repro.service.progress` — per-job progress fan-out;
- :mod:`~repro.service.net` — the ``repro-wire/1`` TCP front end;
- :mod:`~repro.service.loadgen` — open-loop Poisson load harness.

Clients should reach all of this through :class:`repro.api.Client`.
"""

from .admission import AdmissionController, AdmissionDecision, SHED_REASONS
from .cache import ResultCache, job_signature
from .jobs import (
    FAILURE_CLASSES,
    JOB_SCHEMA,
    AttemptRecord,
    JobRecord,
    JobState,
    RetryPolicy,
    SERVICE_SCHEMA,
    ServiceJob,
    SubmitResult,
    classify_failure,
)
from .loadgen import LOADGEN_SCHEMA, LoadgenConfig, run_loadgen
from .net import (
    MAX_FRAME_BYTES,
    PlacementServer,
    WIRE_SCHEMA,
    WireClient,
    WireError,
)
from .pool import WorkerDeath, WorkerHandle, WorkerPool
from .progress import PROGRESS_EVENT, ProgressBroker, RESULT_EVENT
from .supervisor import PlacementService, ServiceConfig, serve_jobs

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AttemptRecord",
    "FAILURE_CLASSES",
    "JOB_SCHEMA",
    "JobRecord",
    "JobState",
    "LOADGEN_SCHEMA",
    "LoadgenConfig",
    "MAX_FRAME_BYTES",
    "PROGRESS_EVENT",
    "PlacementServer",
    "PlacementService",
    "ProgressBroker",
    "RESULT_EVENT",
    "ResultCache",
    "RetryPolicy",
    "SERVICE_SCHEMA",
    "SHED_REASONS",
    "ServiceJob",
    "ServiceConfig",
    "SubmitResult",
    "WIRE_SCHEMA",
    "WireClient",
    "WireError",
    "WorkerDeath",
    "WorkerHandle",
    "WorkerPool",
    "classify_failure",
    "job_signature",
    "run_loadgen",
    "serve_jobs",
]
