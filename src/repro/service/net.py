"""The ``repro-wire/1`` TCP front end over the placement service.

Wire format: every frame is a 4-byte big-endian unsigned length prefix
followed by exactly that many bytes — one UTF-8 JSON object ending in
``"\\n"``.  Length-prefixed JSONL keeps the parser trivial (no
re-synchronization, no streaming JSON) while staying greppable off a
pcap.

Protocol (versioned ``repro-wire/1``):

- the client's **first** frame must be ``hello`` carrying the schema tag
  and an auth ``token`` — the token *is* the tenant identity, and every
  job on the connection is accounted against it by the existing admission
  quotas (a client cannot claim another tenant's quota by editing a job
  spec: the server overwrites the spec's tenant with the connection's);
- ``submit`` carries a JSON job spec (the :meth:`ServiceJob.to_spec`
  format, inline ``netlist_text`` supported) and an optional
  ``subscribe`` flag; the server answers ``submitted`` (with ``cached``
  true when the result cache short-circuited the job) or ``shed`` with
  the structured admission reason;
- ``subscribe``/``cancel``/``result``/``report`` manage a job after
  submit; ``result`` never blocks the connection — the server registers a
  terminal watcher and the ``result`` frame arrives asynchronously, like
  progress frames do;
- server→client frames beyond replies: ``progress`` (one per placer
  iteration of a subscribed job) and ``result`` (terminal record; always
  the last frame of a subscription).

Every connection has exactly one writer thread draining one outbox
queue, so the two frame producers (the reader loop answering requests,
the supervisor loop publishing progress) never interleave bytes on the
socket.  Frames of *different* kinds may reorder around a reply (a cache
hit publishes its terminal ``result`` inside ``submit``, before the
``submitted`` reply is queued); the client demuxes by job id and
tolerates that by construction.

A client that disconnects mid-stream costs nothing: its reader loop
unsubscribes every handle it registered, its outbox writer dies with the
socket, and the broker additionally drops any callback that raises — the
worker never blocks on a dead consumer because nothing between worker
and socket ever blocks on the socket.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import threading
from typing import Any, Dict, List, Optional, Tuple

WIRE_SCHEMA = "repro-wire/1"
#: Upper bound on one frame's byte length — garbage-prefix protection.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class WireError(RuntimeError):
    """A protocol violation or server-reported error."""


def send_frame(sock: socket.socket, obj: Dict[str, Any]) -> None:
    """Serialize *obj* and write one length-prefixed frame."""
    body = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds the maximum")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed frame; raises ``EOFError`` on close."""
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds the maximum")
    body = _recv_exact(sock, length)
    frame = json.loads(body.decode("utf-8"))
    if not isinstance(frame, dict):
        raise WireError("frame body is not a JSON object")
    return frame


class _Connection:
    """Server-side state of one accepted client connection."""

    def __init__(self, sock: socket.socket, peer: Tuple[str, int]):
        self.sock = sock
        self.peer = peer
        self.tenant: Optional[str] = None
        self.outbox: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue()
        self.closed = threading.Event()
        #: Broker handles this connection registered, for disconnect
        #: cleanup: job_id -> subscription handle.
        self.subs: Dict[str, Tuple[str, int]] = {}

    def enqueue(self, frame: Dict[str, Any]) -> None:
        """Queue one frame for the writer thread; raises once closed so
        the broker's publish path drops us as a dead subscriber."""
        if self.closed.is_set():
            raise WireError("connection closed")
        self.outbox.put(frame)

    def event_callback(self, job_id: str):
        """A broker callback streaming *job_id*'s events to this client."""
        def callback(event: Dict[str, Any]) -> None:
            self.enqueue(dict(event, job=job_id))
        return callback

    def writer_loop(self) -> None:
        try:
            while True:
                frame = self.outbox.get()
                if frame is None:
                    return
                send_frame(self.sock, frame)
        except OSError:
            pass  # reader loop owns teardown
        finally:
            self.closed.set()


class PlacementServer:
    """TCP front end: ``repro-wire/1`` frames in, placement jobs out.

    Wraps a running :class:`~repro.service.PlacementService` (or owns a
    fresh one built from *service_config*).  ``port=0`` binds an
    ephemeral port — read :attr:`address` after :meth:`start`.  Use as a
    context manager.
    """

    def __init__(
        self,
        service=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service_config=None,
        events=None,
    ):
        if service is None:
            from .supervisor import PlacementService

            service = PlacementService(service_config, events=events)
            self._owns_service = True
        else:
            self._owns_service = False
        self.service = service
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: List[_Connection] = []
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        self._job_seq = 0
        self._seq_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "PlacementServer":
        if self._listener is not None:
            return self
        if self._owns_service:
            self.service.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._listener = listener
        self.service.events.emit(
            "server_listen", host=self.address[0], port=self.address[1]
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-wire-accept"
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        if self._listener is None:
            raise RuntimeError("server not started")
        addr = self._listener.getsockname()
        return (addr[0], addr[1])

    def __enter__(self) -> "PlacementServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting, drop every connection, shut an owned service."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            self._drop(conn)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._owns_service:
            self.service.shutdown()

    # -- accept / per-connection loops -----------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(sock, peer)
            with self._conns_lock:
                self._conns.append(conn)
            threading.Thread(
                target=conn.writer_loop, daemon=True,
                name=f"repro-wire-w-{peer[1]}",
            ).start()
            threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True,
                name=f"repro-wire-r-{peer[1]}",
            ).start()

    def _drop(self, conn: _Connection) -> None:
        """Tear one connection down; idempotent, callable from any side."""
        if conn.closed.is_set():
            return
        conn.closed.set()
        for handle in conn.subs.values():
            self.service.broker.unsubscribe(handle)
        conn.subs.clear()
        conn.outbox.put(None)  # wake the writer so it exits
        try:
            conn.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._conns_lock:
            if conn in self._conns:
                self._conns.remove(conn)
        self.service.events.emit(
            "client_disconnect", tenant=conn.tenant, port=conn.peer[1]
        )

    def _reader_loop(self, conn: _Connection) -> None:
        try:
            hello = recv_frame(conn.sock)
            if hello.get("type") != "hello" or (
                hello.get("schema") != WIRE_SCHEMA
            ):
                # Written directly, not via the outbox: teardown follows
                # immediately and must not race the writer thread out of
                # delivering the rejection.  Nothing else can be writing
                # yet — no frame has been enqueued on this connection.
                send_frame(conn.sock, {
                    "type": "error",
                    "error": f"expected a {WIRE_SCHEMA} hello frame",
                })
                return
            conn.tenant = str(hello.get("token") or "default")
            conn.enqueue({
                "type": "hello", "schema": WIRE_SCHEMA,
                "tenant": conn.tenant,
            })
            self.service.events.emit(
                "client_connect", tenant=conn.tenant, port=conn.peer[1]
            )
            while not self._stop.is_set():
                frame = recv_frame(conn.sock)
                self._handle(conn, frame)
        except (EOFError, OSError, WireError):
            pass  # disconnect (clean or not): fall through to cleanup
        finally:
            self._drop(conn)

    # -- request handling ------------------------------------------------
    def _handle(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        kind = frame.get("type")
        try:
            if kind == "submit":
                self._handle_submit(conn, frame)
            elif kind == "subscribe":
                self._handle_subscribe(conn, frame)
            elif kind == "cancel":
                job_id = str(frame.get("job"))
                ok = self.service.cancel(job_id)
                conn.enqueue({"type": "cancelled", "job": job_id, "ok": ok})
            elif kind == "result":
                self._handle_result(conn, frame)
            elif kind == "report":
                conn.enqueue({
                    "type": "report", "report": self.service.report(),
                })
            else:
                conn.enqueue({
                    "type": "error",
                    "error": f"unknown frame type {kind!r}",
                })
        except WireError:
            raise
        except Exception as exc:  # noqa: BLE001 — one bad request != conn
            conn.enqueue({
                "type": "error", "request": kind,
                "error": f"{type(exc).__name__}: {exc}",
            })

    def _next_job_id(self, tenant: str) -> str:
        with self._seq_lock:
            self._job_seq += 1
            return f"{tenant}-{self._job_seq:05d}"

    def _handle_submit(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        from dataclasses import replace

        from .jobs import ServiceJob

        spec = dict(frame.get("spec") or {})
        job_id = str(spec.pop("id", None) or self._next_job_id(conn.tenant))
        job = ServiceJob.from_spec(spec, job_id=job_id)
        # The connection's auth token is the tenant; a spec cannot claim
        # another tenant's quota.
        job = replace(job, tenant=conn.tenant)
        subscribe = bool(frame.get("subscribe"))
        if subscribe:
            # Register on the broker *before* submit so the stream is
            # complete from iteration one — and so a cache hit's terminal
            # event (published inside submit) reaches this client.
            handle = self.service.broker.subscribe(
                job_id, conn.event_callback(job_id)
            )
            conn.subs[job_id] = handle
        # A cache hit or shed publishes its terminal event inside
        # submit(), ahead of this reply — the client's per-job demux
        # absorbs that reordering.  No lock may be held around submit():
        # broker callbacks also run under the supervisor's condition
        # variable, and holding a connection lock here would deadlock
        # against a concurrent progress publish.
        ticket = self.service.submit(job)
        if ticket.admitted:
            conn.enqueue({
                "type": "submitted", "job": ticket.job_id,
                "cached": ticket.cached,
            })
        else:
            conn.enqueue({
                "type": "shed", "job": ticket.job_id,
                "reason": ticket.reason,
            })

    def _handle_subscribe(
        self, conn: _Connection, frame: Dict[str, Any]
    ) -> None:
        job_id = str(frame.get("job"))
        conn.enqueue({"type": "subscribed", "job": job_id})
        handle = self.service.subscribe(job_id, conn.event_callback(job_id))
        if handle is not None:
            conn.subs[job_id] = handle

    def _handle_result(self, conn: _Connection, frame: Dict[str, Any]) -> None:
        job_id = str(frame.get("job"))
        record = self.service.record(job_id)
        if record is None:
            conn.enqueue({
                "type": "error", "request": "result",
                "error": f"unknown job {job_id!r}",
            })
            return

        def deliver(rec) -> None:
            try:
                conn.enqueue({
                    "type": "result", "job": job_id,
                    "state": rec.state.value, "record": rec.to_dict(),
                })
            except WireError:
                pass  # client left; nothing to deliver to

        # Ack synchronously, deliver asynchronously: terminal now →
        # delivered right behind the ack, otherwise the watcher fires on
        # the terminal transition.  The reader loop never blocks.
        conn.enqueue({"type": "result_pending", "job": job_id})
        self.service.on_terminal(job_id, deliver)


class _JobEntry:
    """Client-side demux state of one job on a wire connection."""

    def __init__(self):
        self.events: "queue.Queue[Dict[str, Any]]" = queue.Queue()
        self.terminal = threading.Event()
        self.record_data: Optional[Dict[str, Any]] = None
        self.result_requested = False


class WireClient:
    """Client half of ``repro-wire/1``: one socket, serialized RPCs, a
    reader thread demuxing async ``progress``/``result`` frames into
    per-job queues.  :class:`repro.api.Client` wraps this; use that."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        token: str = "default",
        timeout: float = 10.0,
    ):
        self.token = token
        self.timeout = timeout
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(self.sock, {
            "type": "hello", "schema": WIRE_SCHEMA, "token": token,
        })
        reply = recv_frame(self.sock)
        if reply.get("type") != "hello" or reply.get("schema") != WIRE_SCHEMA:
            raise WireError(f"handshake failed: {reply}")
        self.sock.settimeout(None)
        self._rpc_lock = threading.Lock()
        self._replies: "queue.Queue[Dict[str, Any]]" = queue.Queue()
        self._jobs: Dict[str, _JobEntry] = {}
        self._jobs_lock = threading.Lock()
        self._closed = threading.Event()
        #: Optional hook fired from the reader thread on every terminal
        #: ``result`` frame — the load generator's completion tap.
        self.on_result = None
        self._reader = threading.Thread(
            target=self._reader_loop, daemon=True, name="repro-wire-client"
        )
        self._reader.start()

    # -- plumbing --------------------------------------------------------
    def _entry(self, job_id: str) -> _JobEntry:
        with self._jobs_lock:
            entry = self._jobs.get(job_id)
            if entry is None:
                entry = self._jobs[job_id] = _JobEntry()
            return entry

    def _reader_loop(self) -> None:
        try:
            while True:
                frame = recv_frame(self.sock)
                kind = frame.get("type")
                if kind == "progress":
                    self._entry(str(frame.get("job"))).events.put(frame)
                elif kind == "result":
                    entry = self._entry(str(frame.get("job")))
                    entry.record_data = frame.get("record")
                    entry.events.put(frame)
                    entry.terminal.set()
                    hook = self.on_result
                    if hook is not None:
                        hook(frame)
                else:  # an RPC reply (submitted/shed/cancelled/... /error)
                    self._replies.put(frame)
        except (EOFError, OSError, WireError):
            self._closed.set()
            # Wake every waiter: the connection is gone.
            with self._jobs_lock:
                for entry in self._jobs.values():
                    entry.terminal.set()

    def _rpc(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        with self._rpc_lock:
            if self._closed.is_set():
                raise WireError("connection closed")
            send_frame(self.sock, frame)
            try:
                reply = self._replies.get(timeout=self.timeout)
            except queue.Empty:
                raise WireError(
                    f"no reply to {frame.get('type')!r} within "
                    f"{self.timeout}s"
                ) from None
        if reply.get("type") == "error":
            raise WireError(reply.get("error") or "server error")
        return reply

    def close(self) -> None:
        self._closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    # -- the operations api.Client delegates to --------------------------
    def submit_job(
        self,
        client,
        job,
        *,
        job_id: Optional[str] = None,
        priority: int = 0,
        timeout_seconds: Optional[float] = None,
        subscribe: bool = False,
    ):
        """Submit a :class:`PlacementJob`/:class:`ServiceJob`; returns the
        :class:`repro.api.JobHandle` *client* hands out."""
        from ..api import JobHandle
        from .jobs import ServiceJob

        if not isinstance(job, ServiceJob):
            job = ServiceJob(
                job=job,
                job_id=job_id or "",
                priority=priority,
                timeout_seconds=timeout_seconds,
            )
        spec = job.to_spec()
        if not spec.get("id"):
            spec.pop("id", None)  # let the server assign one
        reply = self._rpc({
            "type": "submit", "spec": spec, "subscribe": subscribe,
        })
        assigned = str(reply.get("job"))
        entry = self._entry(assigned)
        if reply.get("type") == "shed":
            return JobHandle(
                client, assigned, admitted=False,
                shed_reason=reply.get("reason"),
                events=entry.events if subscribe else None,
            )
        return JobHandle(
            client, assigned,
            cached=bool(reply.get("cached")),
            events=entry.events if subscribe else None,
        )

    def cancel(self, job_id: str) -> bool:
        reply = self._rpc({"type": "cancel", "job": job_id})
        return bool(reply.get("ok"))

    def wait_result(self, job_id: str, timeout: Optional[float] = None):
        """Block until the job's terminal ``result`` frame; returns the
        reconstructed :class:`~repro.service.jobs.JobRecord` (or ``None``
        on timeout)."""
        from .jobs import JobRecord

        entry = self._entry(job_id)
        if not entry.terminal.is_set() and not entry.result_requested:
            entry.result_requested = True
            send_reply = self._rpc({"type": "result", "job": job_id})
            # The reply *is* asynchronous (the server never blocks); any
            # non-error ack means the watcher is armed.  Errors raised.
            del send_reply
        if not entry.terminal.wait(timeout):
            return None
        if entry.record_data is None:
            if self._closed.is_set():
                raise WireError("connection closed before the result")
            return None
        return JobRecord.from_dict(entry.record_data)

    def report(self) -> Dict[str, Any]:
        reply = self._rpc({"type": "report"})
        return reply.get("report") or {}


__all__ = [
    "MAX_FRAME_BYTES",
    "PlacementServer",
    "WIRE_SCHEMA",
    "WireClient",
    "WireError",
    "recv_frame",
    "send_frame",
]
