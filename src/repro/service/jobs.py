"""Service-level job specs, retry policy and per-job records.

A service job is a :class:`~repro.parallel.jobs.PlacementJob` (the pure,
picklable spec the batch engine already runs) wrapped with the serving
concerns the batch engine does not have: identity (``job_id``), queue
``priority``, a ``tenant`` for quota accounting, a hard per-job wall-clock
``timeout_seconds`` watchdog, and a :class:`RetryPolicy`.

Because every job is a deterministic pure function of its spec (the
paper's generic-flow framing), retrying a job — on the same worker or a
migrated one — can never change its answer, only its wall-clock.  That is
what makes supervision at this level *sound*: the supervisor reasons
about processes and time; placement results stay bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from ..parallel.jobs import JobResult, PlacementJob

#: Service report schema.  ``/2`` adds the result-cache block, per-job
#: ``cached`` flags and p999 latency (PR 10); the report shape is
#: otherwise a superset of ``/1``.
SERVICE_SCHEMA = "repro-service/2"
#: Round-trip schema tag for :meth:`JobRecord.to_dict`.
JOB_SCHEMA = "repro-job/1"

#: Failure classes a finished attempt can be attributed to.  The first
#: three are the retryable-by-default ones; ``rejected`` (bad input, e.g.
#: ``ValueError``) and ``error`` (anything else) fail fast.
FAILURE_CLASSES = ("worker_death", "timeout", "numerical", "rejected", "error")


def classify_failure(error_type: Optional[str]) -> str:
    """Map a worker-reported exception type to a retry class.

    ``worker_death`` and ``timeout`` never reach here — the supervisor
    assigns those itself (the worker was killed and reported nothing).
    """
    if error_type == "NumericalHealthError":
        return "numerical"
    if error_type in ("ValueError", "TypeError", "SystemExit"):
        return "rejected"
    return "error"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, on which failures, and with what backoff to retry.

    ``max_attempts`` counts the first attempt: 3 means one run plus up to
    two retries.  ``retry_on`` names failure classes (see
    :data:`FAILURE_CLASSES`); ``numerical`` is included by default
    because a :class:`~repro.core.health.NumericalHealthError` that
    escaped the in-process recovery ladder has already exhausted every
    rung — the one thing a retry adds is a fresh process (clean heap,
    no inherited allocator state), the classic crash-only remedy.
    Requeue delay grows exponentially and is capped:
    ``min(backoff_cap_s, backoff_base_s * 2**(attempt-1))``.
    """

    max_attempts: int = 3
    retry_on: Tuple[str, ...] = ("worker_death", "timeout", "numerical")
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        unknown = set(self.retry_on) - set(FAILURE_CLASSES)
        if unknown:
            raise ValueError(
                f"unknown retry classes {sorted(unknown)}; choose from "
                f"{FAILURE_CLASSES}"
            )

    def delay_s(self, attempt: int) -> float:
        """Requeue delay after failed attempt number *attempt* (1-based)."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** max(0, attempt - 1)),
        )

    def should_retry(self, failure_class: str, attempt: int) -> bool:
        """True if attempt number *attempt* (1-based) may be retried."""
        return attempt < self.max_attempts and failure_class in self.retry_on

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "retry_on": list(self.retry_on),
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "RetryPolicy":
        if not data:
            return cls()
        return cls(
            max_attempts=int(data.get("max_attempts", 3)),
            retry_on=tuple(
                data.get("retry_on", ("worker_death", "timeout", "numerical"))
            ),
            backoff_base_s=float(data.get("backoff_base_s", 0.05)),
            backoff_cap_s=float(data.get("backoff_cap_s", 2.0)),
        )


@dataclass(frozen=True)
class ServiceJob:
    """One submitted unit of service work.

    ``job`` is the pure placement spec; everything else is scheduling
    metadata.  Lower ``priority`` runs first (0 is the default lane).
    ``timeout_seconds``/``retry`` of ``None`` fall back to the service
    defaults.
    """

    job: PlacementJob
    job_id: str
    priority: int = 0
    tenant: str = "default"
    timeout_seconds: Optional[float] = None
    retry: Optional[RetryPolicy] = None

    @classmethod
    def from_spec(cls, spec: Dict[str, Any], job_id: str) -> "ServiceJob":
        """Build from a JSON job spec (the ``repro submit`` file format,
        and the body of a ``repro-wire/1`` submit frame).

        ``netlist_text`` carries an inline design in the canonical repro
        netlist format (see :func:`repro.netlist.io.netlist_to_string`) —
        the way a wire client ships a live :class:`Netlist` that has no
        name resolvable server-side.  It wins over ``source``.
        """
        known = {
            "id", "source", "netlist_text", "seed", "config", "name",
            "legalize", "max_iterations", "scale", "utilization",
            "inject_faults", "priority", "tenant", "timeout_seconds",
            "retry",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown job-spec keys {sorted(unknown)}; known keys are "
                f"{sorted(known)}"
            )
        if "source" not in spec and "netlist_text" not in spec:
            raise ValueError("job spec needs a 'source' or 'netlist_text'")
        if spec.get("netlist_text") is not None:
            from ..netlist.io import netlist_from_string

            source: Any = netlist_from_string(spec["netlist_text"])
        else:
            source = spec["source"]
        job = PlacementJob(
            source=source,
            seed=int(spec.get("seed", 0)),
            config=spec.get("config"),
            name=spec.get("name") or job_id,
            legalize=bool(spec.get("legalize", True)),
            max_iterations=spec.get("max_iterations"),
            scale=float(spec.get("scale", 0.2)),
            utilization=float(spec.get("utilization", 0.8)),
            inject_faults=tuple(
                (site, dict(kwargs))
                for site, kwargs in spec.get("inject_faults", ())
            ),
        )
        retry = spec.get("retry")
        return cls(
            job=job,
            job_id=job_id,
            priority=int(spec.get("priority", 0)),
            tenant=str(spec.get("tenant", "default")),
            timeout_seconds=spec.get("timeout_seconds"),
            retry=RetryPolicy.from_dict(retry) if retry is not None else None,
        )

    def to_spec(self) -> Dict[str, Any]:
        """The JSON job spec this job round-trips through (inverse of
        :meth:`from_spec` — what a wire client puts in a submit frame).

        Name/path sources travel as strings; a live netlist travels as
        ``netlist_text``.  A ``(netlist, region)`` tuple source cannot
        serialize (explicit regions have no canonical text form) and
        raises ``ValueError`` — resolve it to a Bookshelf file first.
        """
        job = self.job
        spec: Dict[str, Any] = {"id": self.job_id}
        source = job.source
        if isinstance(source, (str,)) or hasattr(source, "__fspath__"):
            spec["source"] = str(source)
        else:
            netlist = getattr(source, "netlist", source)
            if isinstance(source, tuple) or not hasattr(netlist, "cells"):
                raise ValueError(
                    "cannot serialize a (netlist, region) tuple source; "
                    "use a name/path source or a bare Netlist"
                )
            from ..netlist.io import netlist_to_string

            spec["netlist_text"] = netlist_to_string(netlist)
        if job.seed:
            spec["seed"] = int(job.seed)
        if job.config is not None:
            spec["config"] = dict(job.config)
        if job.name:
            spec["name"] = job.name
        if not job.legalize:
            spec["legalize"] = False
        if job.max_iterations is not None:
            spec["max_iterations"] = job.max_iterations
        if job.scale != 0.2:
            spec["scale"] = job.scale
        if job.utilization != 0.8:
            spec["utilization"] = job.utilization
        if job.inject_faults:
            spec["inject_faults"] = [
                [site, dict(kwargs)] for site, kwargs in job.inject_faults
            ]
        if self.priority:
            spec["priority"] = self.priority
        if self.tenant != "default":
            spec["tenant"] = self.tenant
        if self.timeout_seconds is not None:
            spec["timeout_seconds"] = self.timeout_seconds
        if self.retry is not None:
            spec["retry"] = self.retry.to_dict()
        return spec


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    SHED = "shed"


@dataclass
class AttemptRecord:
    """One execution attempt of a job on one worker."""

    attempt: int
    worker_id: int
    dispatched_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    outcome: Optional[str] = None  # "done" or a failure class
    error: Optional[str] = None
    resumed_iteration: Optional[int] = None

    def summary(self) -> Dict[str, Any]:
        seconds = None
        if self.finished_at is not None:
            seconds = round(self.finished_at - self.dispatched_at, 6)
        return {
            "attempt": self.attempt,
            "worker": self.worker_id,
            "outcome": self.outcome,
            "error": self.error,
            "seconds": seconds,
            "resumed_iteration": self.resumed_iteration,
        }


@dataclass
class JobRecord:
    """Mutable supervisor-side state of one admitted job."""

    spec: ServiceJob
    seq: int
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    finished_at: Optional[float] = None
    attempts: List[AttemptRecord] = field(default_factory=list)
    result: Optional[JobResult] = None
    failure_class: Optional[str] = None
    reason: Optional[str] = None
    not_before: float = 0.0  # earliest dispatch time (retry backoff)
    #: True when the job was answered from the result cache without
    #: dispatching (its flow is bit-identical to the run that seeded it).
    cached: bool = False
    #: Content signature of the job spec (``None`` when uncacheable).
    signature: Optional[str] = None

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-finish wall-clock, once the job reached an end state."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def summary(self) -> Dict[str, Any]:
        ok = self.state == JobState.DONE
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "attempts": [a.summary() for a in self.attempts],
            "n_attempts": self.attempt_count,
            "latency_s": round(self.latency_s, 6)
            if self.latency_s is not None else None,
            "failure_class": self.failure_class,
            "reason": self.reason,
            "hpwl_m": self.result.hpwl_m if ok and self.result else None,
            "legal_hpwl_m": self.result.legal_hpwl_m
            if ok and self.result else None,
            "final_hpwl_m": self.result.final_hpwl_m
            if ok and self.result else None,
            "iterations": self.result.iterations if ok and self.result else 0,
            "error": self.result.error
            if self.result is not None else self.reason,
            "error_type": self.result.error_type
            if self.result is not None else None,
            "cached": self.cached,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Versioned round-trip form (schema ``repro-job/1``).

        This is the record a ``repro-wire/1`` ``result`` frame carries and
        checkpoint metadata stores: identity, terminal state, outcome and
        the embedded :meth:`JobResult.to_dict` scalars (positions hash
        included, coordinate arrays not).  Worker-attempt timestamps are
        summarized, not round-tripped.
        """
        data = self.summary()
        data["schema"] = JOB_SCHEMA
        data["seq"] = self.seq
        data["signature"] = self.signature
        if isinstance(self.spec.job.source, str):
            data["source"] = self.spec.job.source
        data["result"] = (
            self.result.to_dict(placements=False)
            if self.result is not None else None
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        """Rebuild a client-side view of the record from :meth:`to_dict`.

        The spec is reduced to identity + scheduling metadata (the pure
        job already ran server-side); ``latency_s`` is preserved via the
        stored value, attempt objects are not reconstructed.
        """
        schema = data.get("schema")
        if schema != JOB_SCHEMA:
            raise ValueError(
                f"expected schema {JOB_SCHEMA!r}, got {schema!r}"
            )
        job_id = str(data["job_id"])
        spec = ServiceJob(
            job=PlacementJob(
                source=data.get("source") or job_id, name=job_id
            ),
            job_id=job_id,
            priority=int(data.get("priority", 0)),
            tenant=str(data.get("tenant", "default")),
        )
        record = cls(spec=spec, seq=int(data.get("seq", 0)))
        record.state = JobState(data["state"])
        record.failure_class = data.get("failure_class")
        record.reason = data.get("reason")
        record.cached = bool(data.get("cached", False))
        record.signature = data.get("signature")
        latency = data.get("latency_s")
        record.submitted_at = 0.0
        record.finished_at = float(latency) if latency is not None else None
        result = data.get("result")
        if result is not None:
            record.result = JobResult.from_dict(result)
        return record


@dataclass(frozen=True)
class SubmitResult:
    """What :meth:`PlacementService.submit` returns: admitted or why not."""

    admitted: bool
    job_id: str
    reason: Optional[str] = None
    #: True when the submit was answered from the result cache (the job
    #: is already terminal by the time this returns).
    cached: bool = False


__all__ = [
    "AttemptRecord",
    "FAILURE_CLASSES",
    "JOB_SCHEMA",
    "JobRecord",
    "JobState",
    "RetryPolicy",
    "SERVICE_SCHEMA",
    "ServiceJob",
    "SubmitResult",
    "classify_failure",
]
