"""Plain-text result tables in the style of the paper's Tables 1-4."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cellish = Union[str, int, float, None]


def _fmt(value: Cellish, float_digits: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cellish]],
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Aligned ASCII table; floats formatted to *float_digits* places."""
    text_rows: List[List[str]] = [
        [_fmt(cell, float_digits) for cell in row] for row in rows
    ]
    header_row = [str(h) for h in headers]
    widths = [len(h) for h in header_row]
    for row in text_rows:
        if len(row) != len(header_row):
            raise ValueError(
                f"row width {len(row)} does not match {len(header_row)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(header_row))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cellish]],
    float_digits: int = 3,
) -> str:
    """GitHub-flavored markdown table (for EXPERIMENTS.md)."""
    text_rows = [[_fmt(cell, float_digits) for cell in row] for row in rows]
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in text_rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def percent_improvement(baseline: float, ours: float) -> float:
    """Positive when *ours* is smaller (better), as in Table 2."""
    if baseline == 0.0:
        raise ValueError("baseline metric is zero")
    return 100.0 * (baseline - ours) / baseline
