"""Run analysis: placement summaries, comparisons, JSON export.

Glue for experiment bookkeeping: summarize a placement into one flat record
(wire lengths, distribution, optional timing), diff two placements, and
serialize records to JSON for external tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..geometry import PlacementRegion
from ..netlist import Placement
from .overlap import distribution_stats, total_overlap
from .wirelength import hpwl_meters, mst_wirelength, quadratic_wirelength

PathLike = Union[str, Path]


@dataclass(frozen=True)
class PlacementSummary:
    """Flat quality record of one placement."""

    circuit: str
    cells: int
    movable: int
    nets: int
    hpwl_m: float
    mst_m: float
    quadratic_um2: float
    overlap_um2: float
    max_density: float
    empty_square_ratio: float
    max_delay_ns: Optional[float] = None

    def to_dict(self) -> Dict:
        return asdict(self)


def summarize_placement(
    placement: Placement,
    region: PlacementRegion,
    with_timing: bool = False,
) -> PlacementSummary:
    """Collect all headline metrics of a placement in one pass."""
    nl = placement.netlist
    stats = distribution_stats(placement, region)
    max_delay = None
    if with_timing:
        from ..timing import StaticTimingAnalyzer

        max_delay = StaticTimingAnalyzer(nl).analyze(placement).max_delay_ns
    return PlacementSummary(
        circuit=nl.name,
        cells=nl.num_cells,
        movable=nl.num_movable,
        nets=nl.num_nets,
        hpwl_m=hpwl_meters(placement),
        mst_m=mst_wirelength(placement) / 1.0e6,
        quadratic_um2=quadratic_wirelength(placement),
        overlap_um2=total_overlap(placement),
        max_density=stats.max_density,
        empty_square_ratio=stats.empty_square_ratio,
        max_delay_ns=max_delay,
    )


@dataclass(frozen=True)
class PlacementDiff:
    """How far apart two placements of the same netlist are."""

    mean_displacement: float
    max_displacement: float
    rms_displacement: float
    moved_fraction: float  # cells displaced by more than one mean cell side
    hpwl_delta_percent: float

    def to_dict(self) -> Dict:
        return asdict(self)


def compare_placements(a: Placement, b: Placement) -> PlacementDiff:
    """Displacement-field and wire-length comparison (same netlist)."""
    if a.netlist is not b.netlist and a.netlist.num_cells != b.netlist.num_cells:
        raise ValueError("placements are for different netlists")
    nl = a.netlist
    movable = nl.movable_indices
    d = b.displacement_from(a)[movable]
    if d.size == 0:
        raise ValueError("no movable cells to compare")
    threshold = float(np.sqrt(nl.average_movable_area()))
    base = hpwl_meters(a)
    delta = 100.0 * (hpwl_meters(b) - base) / base if base else 0.0
    return PlacementDiff(
        mean_displacement=float(d.mean()),
        max_displacement=float(d.max()),
        rms_displacement=float(np.sqrt((d**2).mean())),
        moved_fraction=float((d > threshold).mean()),
        hpwl_delta_percent=delta,
    )


def save_summary_json(
    summary: Union[PlacementSummary, PlacementDiff], path: PathLike
) -> None:
    """Write a summary/diff record as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(summary.to_dict(), indent=2) + "\n", encoding="utf-8"
    )


def load_summary_json(path: PathLike) -> Dict:
    """Read a record written by :func:`save_summary_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
