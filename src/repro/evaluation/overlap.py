"""Overlap and distribution quality metrics.

The global placer's job (Section 3) is to remove overlaps and distribute
cells evenly; these metrics quantify both: pairwise overlap area, binned
density overflow, and the paper's stopping-criterion quantity — the largest
empty square relative to the average cell area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import Grid, PlacementRegion, largest_empty_square_side
from ..netlist import Placement


def total_overlap(placement: Placement, movable_only: bool = True) -> float:
    """Sum of pairwise overlap areas via a sweep over sorted x-intervals.

    O(n^2) in the worst case but pruned by x-sorting; fine up to tens of
    thousands of cells for evaluation purposes.
    """
    nl = placement.netlist
    indices = nl.movable_indices if movable_only else np.arange(nl.num_cells)
    if indices.size < 2:
        return 0.0
    xlo = placement.x[indices] - nl.widths[indices] / 2.0
    xhi = placement.x[indices] + nl.widths[indices] / 2.0
    ylo = placement.y[indices] - nl.heights[indices] / 2.0
    yhi = placement.y[indices] + nl.heights[indices] / 2.0
    order = np.argsort(xlo, kind="stable")
    xlo, xhi, ylo, yhi = xlo[order], xhi[order], ylo[order], yhi[order]
    total = 0.0
    n = len(order)
    for i in range(n):
        j = i + 1
        while j < n and xlo[j] < xhi[i]:
            w = min(xhi[i], xhi[j]) - xlo[j]
            h = min(yhi[i], yhi[j]) - max(ylo[i], ylo[j])
            if w > 0.0 and h > 0.0:
                total += w * h
            j += 1
    return total


def overlap_ratio(placement: Placement) -> float:
    """Pairwise overlap area normalized by total movable cell area."""
    area = placement.netlist.movable_area()
    if area == 0.0:
        return 0.0
    return total_overlap(placement) / area


def occupancy_map(
    placement: Placement,
    region: PlacementRegion,
    grid: Optional[Grid] = None,
    target_bin: Optional[float] = None,
) -> np.ndarray:
    """Covered area per bin from all cells (fixed cells included)."""
    nl = placement.netlist
    if grid is None:
        if target_bin is None:
            target_bin = default_bin_side(placement, region)
        grid = Grid.square_bins(region.bounds, target_bin)
    xlo, ylo = placement.lower_left()
    return grid.paint_rects(xlo, ylo, nl.widths, nl.heights)


def default_bin_side(placement: Placement, region: PlacementRegion) -> float:
    """Bin side ~ the average movable cell dimension, clamped to a sane grid."""
    nl = placement.netlist
    if nl.num_movable == 0:
        return max(region.width, region.height) / 16.0
    avg_side = float(np.sqrt(nl.average_movable_area()))
    # Keep the grid between 8x8 and 512x512.
    side = min(max(avg_side, max(region.width, region.height) / 512.0),
               min(region.width, region.height) / 8.0)
    return max(side, 1e-9)


@dataclass(frozen=True)
class DistributionStats:
    """Summary of how evenly cells fill the region."""

    max_density: float  # peak bin occupancy / bin area
    mean_density: float
    overflow_area: float  # total area above 100% bin capacity
    largest_empty_square_area: float
    average_cell_area: float

    @property
    def empty_square_ratio(self) -> float:
        """Largest empty square area over average cell area (stop at <= 4)."""
        if self.average_cell_area == 0.0:
            return 0.0
        return self.largest_empty_square_area / self.average_cell_area


def distribution_stats(
    placement: Placement,
    region: PlacementRegion,
    target_bin: Optional[float] = None,
) -> DistributionStats:
    """Density and emptiness statistics on a square-bin grid."""
    if target_bin is None:
        target_bin = default_bin_side(placement, region)
    grid = Grid.square_bins(region.bounds, target_bin)
    occupancy = occupancy_map(placement, region, grid=grid)
    density = occupancy / grid.bin_area
    overflow = np.maximum(occupancy - grid.bin_area, 0.0).sum()
    bin_side = min(grid.dx, grid.dy)
    empty_side = largest_empty_square_side(
        occupancy, bin_side, tol_area=1e-9 * grid.bin_area
    )
    return DistributionStats(
        max_density=float(density.max()),
        mean_density=float(density.mean()),
        overflow_area=float(overflow),
        largest_empty_square_area=empty_side * empty_side,
        average_cell_area=(
            placement.netlist.average_movable_area()
            if placement.netlist.num_movable
            else 0.0
        ),
    )


def is_evenly_distributed(
    placement: Placement,
    region: PlacementRegion,
    max_empty_square_cells: float = 4.0,
    target_bin: Optional[float] = None,
) -> bool:
    """The paper's stopping criterion (Section 4.2).

    True when no empty square larger than ``max_empty_square_cells`` times the
    average cell area exists inside the placement area.
    """
    stats = distribution_stats(placement, region, target_bin=target_bin)
    return stats.empty_square_ratio <= max_empty_square_cells
