"""Wire-length metrics.

The paper measures wire length as the *half perimeter of the enclosing
rectangle* (HPWL) summed over all nets, reported in meters.  The quadratic
engine internally optimizes squared Euclidean clique length; both metrics are
provided here, vectorized over the whole netlist.
"""

from __future__ import annotations

import weakref
from typing import Optional

import numpy as np

from ..netlist import Netlist, Placement, PinDirection

MICRONS_PER_METER = 1.0e6


class NetPinArrays:
    """Flattened CSR-style pin arrays for vectorized per-net reductions."""

    def __init__(self, netlist: Netlist):
        starts = [0]
        cells: list = []
        dxs: list = []
        dys: list = []
        outs: list = []
        OUTPUT = PinDirection.OUTPUT
        for net in netlist.nets:
            for pin in net.pins:
                cells.append(pin.cell)
                dxs.append(pin.dx)
                dys.append(pin.dy)
                outs.append(pin.direction is OUTPUT)
            starts.append(len(cells))
        self.net_start = np.array(starts, dtype=np.int64)
        self.pin_cell = np.array(cells, dtype=np.int64)
        self.pin_dx = np.array(dxs, dtype=np.float64)
        self.pin_dy = np.array(dys, dtype=np.float64)
        self.pin_is_out = np.array(outs, dtype=bool)
        self.static_weight = np.array([n.weight for n in netlist.nets])
        self.degree = np.diff(self.net_start)

    def pin_coords(self, placement: Placement):
        px = placement.x[self.pin_cell] + self.pin_dx
        py = placement.y[self.pin_cell] + self.pin_dy
        return px, py


# Weak keys: entries die with their netlist.  An id(netlist)-keyed dict
# would both leak every entry forever and — worse — serve stale arrays when
# a freed netlist's address gets reused by a new one.
_PIN_ARRAY_CACHE: "weakref.WeakKeyDictionary[Netlist, NetPinArrays]" = (
    weakref.WeakKeyDictionary()
)


def pin_arrays(netlist: Netlist) -> NetPinArrays:
    """Cached flattened pin arrays for a netlist."""
    cached = _PIN_ARRAY_CACHE.get(netlist)
    if cached is None or cached.net_start.size != netlist.num_nets + 1:
        cached = NetPinArrays(netlist)
        _PIN_ARRAY_CACHE[netlist] = cached
    return cached


def net_hpwl(placement: Placement) -> np.ndarray:
    """Half-perimeter wire length of every net, in microns."""
    arrays = pin_arrays(placement.netlist)
    if arrays.pin_cell.size == 0:
        return np.zeros(placement.netlist.num_nets)
    px, py = arrays.pin_coords(placement)
    seg = arrays.net_start[:-1]
    dx = np.maximum.reduceat(px, seg) - np.minimum.reduceat(px, seg)
    dy = np.maximum.reduceat(py, seg) - np.minimum.reduceat(py, seg)
    return dx + dy


def hpwl(placement: Placement, weights: Optional[np.ndarray] = None) -> float:
    """Total (optionally weighted) HPWL in microns."""
    lengths = net_hpwl(placement)
    if weights is None:
        return float(lengths.sum())
    if len(weights) != len(lengths):
        raise ValueError("weight array does not match net count")
    return float((lengths * weights).sum())


def hpwl_meters(placement: Placement) -> float:
    """Total HPWL converted to meters (the paper's Table 1 unit)."""
    return hpwl(placement) / MICRONS_PER_METER


def quadratic_wirelength(placement: Placement) -> float:
    """Sum over nets of the clique squared-distance cost (Section 2.1).

    For each ``k``-pin net the clique contributes
    ``(1/k) * sum_{i<j} (d_ij_x^2 + d_ij_y^2)``, which equals
    ``sum(x^2) - k*mean(x)^2`` per axis — computed that way to stay O(pins).
    """
    arrays = pin_arrays(placement.netlist)
    if arrays.pin_cell.size == 0:
        return 0.0
    px, py = arrays.pin_coords(placement)
    seg = arrays.net_start[:-1]
    k = arrays.degree.astype(np.float64)
    total = 0.0
    for coords in (px, py):
        s1 = np.add.reduceat(coords, seg)
        s2 = np.add.reduceat(coords * coords, seg)
        # (1/k) * sum_{i<j} (c_i - c_j)^2 == s2 - s1^2 / k
        per_net = s2 - (s1 * s1) / k
        total += float(per_net.sum())
    return total


def net_mst_length(placement: Placement, max_degree: int = 64) -> np.ndarray:
    """Per-net rectilinear minimum spanning tree length (microns).

    A tighter routed-length estimate than HPWL (exact for 2-3 pins, within
    1.5x of the Steiner optimum in general).  Prim's algorithm on Manhattan
    distances, O(k^2) per net; nets above ``max_degree`` fall back to HPWL.
    """
    arrays = pin_arrays(placement.netlist)
    out = np.zeros(placement.netlist.num_nets)
    if arrays.pin_cell.size == 0:
        return out
    px, py = arrays.pin_coords(placement)
    hp = net_hpwl(placement)
    starts = arrays.net_start
    for j in range(placement.netlist.num_nets):
        lo, hi = int(starts[j]), int(starts[j + 1])
        k = hi - lo
        if k < 2:
            continue
        if k > max_degree:
            out[j] = hp[j]
            continue
        xs = px[lo:hi]
        ys = py[lo:hi]
        in_tree = np.zeros(k, dtype=bool)
        in_tree[0] = True
        dist = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
        total = 0.0
        for _ in range(k - 1):
            dist_masked = np.where(in_tree, np.inf, dist)
            nxt = int(np.argmin(dist_masked))
            total += float(dist_masked[nxt])
            in_tree[nxt] = True
            cand = np.abs(xs - xs[nxt]) + np.abs(ys - ys[nxt])
            dist = np.minimum(dist, cand)
        out[j] = total
    return out


def mst_wirelength(placement: Placement) -> float:
    """Total rectilinear MST length in microns."""
    return float(net_mst_length(placement).sum())


def net_bounding_boxes(placement: Placement) -> np.ndarray:
    """Per-net (xlo, ylo, xhi, yhi); shape ``(num_nets, 4)``."""
    arrays = pin_arrays(placement.netlist)
    px, py = arrays.pin_coords(placement)
    seg = arrays.net_start[:-1]
    out = np.empty((placement.netlist.num_nets, 4))
    out[:, 0] = np.minimum.reduceat(px, seg)
    out[:, 1] = np.minimum.reduceat(py, seg)
    out[:, 2] = np.maximum.reduceat(px, seg)
    out[:, 3] = np.maximum.reduceat(py, seg)
    return out
