"""Placement quality evaluation: wire length, overlap, distribution, tables."""

from .wirelength import (
    MICRONS_PER_METER,
    NetPinArrays,
    pin_arrays,
    net_hpwl,
    hpwl,
    hpwl_meters,
    quadratic_wirelength,
    net_bounding_boxes,
    net_mst_length,
    mst_wirelength,
)
from .overlap import (
    DistributionStats,
    default_bin_side,
    distribution_stats,
    is_evenly_distributed,
    occupancy_map,
    overlap_ratio,
    total_overlap,
)
from .report import format_table, format_markdown_table, percent_improvement
from .analysis import (
    PlacementDiff,
    PlacementSummary,
    compare_placements,
    load_summary_json,
    save_summary_json,
    summarize_placement,
)

__all__ = [
    "MICRONS_PER_METER",
    "NetPinArrays",
    "pin_arrays",
    "net_hpwl",
    "hpwl",
    "hpwl_meters",
    "quadratic_wirelength",
    "net_bounding_boxes",
    "net_mst_length",
    "mst_wirelength",
    "DistributionStats",
    "default_bin_side",
    "distribution_stats",
    "is_evenly_distributed",
    "occupancy_map",
    "overlap_ratio",
    "total_overlap",
    "format_table",
    "format_markdown_table",
    "percent_improvement",
    "PlacementDiff",
    "PlacementSummary",
    "compare_placements",
    "load_summary_json",
    "save_summary_json",
    "summarize_placement",
]
