"""repro — a full reproduction of "Generic Global Placement and Floorplanning"
(Eisenmann & Johannes, DAC 1998), the force-directed placer known as
Kraftwerk.

Quickstart::

    import repro

    result = repro.place("primary1", scale=0.2)   # place + legalize
    print(result.final_hpwl_m)

    batch = repro.place_many("tiny", seeds=range(8), workers=4)
    print(batch.best_hpwl_m, batch.median_hpwl_m)

Sub-packages:

- :mod:`repro.api` — the stable one-call facade (``place``/``place_many``).
- :mod:`repro.parallel` — the parallel batch-placement engine.
- :mod:`repro.core` — the force-directed global placer (the contribution).
- :mod:`repro.backend` — pluggable array backends (numpy / cupy / torch)
  for the field/solve hot path; see ``docs/BACKENDS.md``.
- :mod:`repro.netlist` — cells, nets, placements, benchmark generators.
- :mod:`repro.geometry` — rectangles, rows, regions, bin grids.
- :mod:`repro.timing` — Elmore delays, STA, timing-driven flows.
- :mod:`repro.legalize` — Abacus/Tetris legalization + detailed improvement.
- :mod:`repro.baselines` — GORDIAN, TimberWolf and SPEED reimplementations.
- :mod:`repro.congestion` / :mod:`repro.thermal` — map-driven placement.
- :mod:`repro.eco` — incremental (ECO) placement.
- :mod:`repro.floorplan` — mixed block/cell flow.
- :mod:`repro.evaluation` — wire length, overlap and report helpers.
- :mod:`repro.observability` — span timers, metric streams, trace export
  and the ``repro bench`` regression harness.
- :mod:`repro.service` — the fault-tolerant placement service: supervised
  worker pool, retry/backoff, checkpoint migration, admission control,
  the ``repro-wire/1`` TCP front end, result cache and load harness.
"""

from .backend import available_backends, resolve_backend
from .geometry import Grid, PlacementRegion, Rect
from .netlist import (
    Cell,
    CellKind,
    GeneratedCircuit,
    GeneratorSpec,
    MCNC_PROFILES,
    Net,
    Netlist,
    NetlistBuilder,
    Pin,
    PinDirection,
    Placement,
    TIMING_CIRCUITS,
    bench_scale,
    generate_circuit,
    make_circuit,
    make_mixed_size_circuit,
    make_suite,
)
from .core import (
    FAST_K,
    HealthGuard,
    KraftwerkPlacer,
    NumericalHealthError,
    PlacementResult,
    PlacerCheckpoint,
    PlacerConfig,
    STANDARD_K,
    load_checkpoint,
    save_checkpoint,
)
from .evaluation import (
    distribution_stats,
    format_table,
    hpwl,
    hpwl_meters,
    is_evenly_distributed,
    overlap_ratio,
    percent_improvement,
    total_overlap,
)
from .legalize import (
    AbacusLegalizer,
    DetailedImprover,
    TetrisLegalizer,
    final_placement,
)
from .timing import (
    ElmoreModel,
    StaticTimingAnalyzer,
    TimingDrivenPlacer,
    exploitation_percent,
    meet_timing_requirement,
)
from .baselines import (
    GordianConfig,
    GordianPlacer,
    SpeedPlacer,
    TimberWolfConfig,
    TimberWolfPlacer,
)
from .congestion import CongestionDrivenPlacer, ProbabilisticRouter
from .thermal import HeatDrivenPlacer, ThermalModel
from .eco import NetlistDelta, eco_place
from .floorplan import MixedSizePlacer
from .observability import (
    NULL_TELEMETRY,
    NullTelemetry,
    SpanRecorder,
    Telemetry,
    read_trace_jsonl,
)
from .api import (
    Client,
    FlowResult,
    JobHandle,
    place,
    place_many,
    place_service,
    region_for_netlist,
    resolve_source,
)
from .parallel import (
    BatchResult,
    JobResult,
    PlacementJob,
    run_batch,
)
from .service import (
    PlacementService,
    RetryPolicy,
    ServiceConfig,
    ServiceJob,
    serve_jobs,
)

__version__ = "1.3.0"

__all__ = [
    "available_backends",
    "resolve_backend",
    "Grid",
    "PlacementRegion",
    "Rect",
    "Cell",
    "CellKind",
    "GeneratedCircuit",
    "GeneratorSpec",
    "MCNC_PROFILES",
    "Net",
    "Netlist",
    "NetlistBuilder",
    "Pin",
    "PinDirection",
    "Placement",
    "TIMING_CIRCUITS",
    "bench_scale",
    "generate_circuit",
    "make_circuit",
    "make_mixed_size_circuit",
    "make_suite",
    "FAST_K",
    "HealthGuard",
    "KraftwerkPlacer",
    "NumericalHealthError",
    "PlacementResult",
    "PlacerCheckpoint",
    "PlacerConfig",
    "STANDARD_K",
    "load_checkpoint",
    "save_checkpoint",
    "distribution_stats",
    "format_table",
    "hpwl",
    "hpwl_meters",
    "is_evenly_distributed",
    "overlap_ratio",
    "percent_improvement",
    "total_overlap",
    "AbacusLegalizer",
    "DetailedImprover",
    "TetrisLegalizer",
    "final_placement",
    "ElmoreModel",
    "StaticTimingAnalyzer",
    "TimingDrivenPlacer",
    "exploitation_percent",
    "meet_timing_requirement",
    "GordianConfig",
    "GordianPlacer",
    "SpeedPlacer",
    "TimberWolfConfig",
    "TimberWolfPlacer",
    "CongestionDrivenPlacer",
    "ProbabilisticRouter",
    "HeatDrivenPlacer",
    "ThermalModel",
    "NetlistDelta",
    "eco_place",
    "MixedSizePlacer",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SpanRecorder",
    "Telemetry",
    "read_trace_jsonl",
    "Client",
    "FlowResult",
    "JobHandle",
    "place",
    "place_many",
    "place_service",
    "region_for_netlist",
    "resolve_source",
    "BatchResult",
    "JobResult",
    "PlacementJob",
    "run_batch",
    "PlacementService",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceJob",
    "serve_jobs",
]
