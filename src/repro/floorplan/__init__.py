"""Mixed block/cell placement and floorplanning."""

from .mixed import FloorplanResult, MixedSizePlacer

__all__ = ["FloorplanResult", "MixedSizePlacer"]
