"""Mixed block/cell placement and floorplanning (Section 5).

The paper's headline flexibility claim: the algorithm "is able to handle
large mixed block/cell placement problems without treating blocks and cells
differently".  And indeed the global placement stage here *is* the plain
:class:`KraftwerkPlacer` — blocks are just big cells in the density model
and the quadratic system.  What blocks need extra is the back end:

1. overlap *between blocks* is removed by iterative pairwise separation
   (push overlapping blocks apart along the axis of least penetration),
2. block bottoms snap to the row grid,
3. the placed blocks become obstacles, rows are carved into segments around
   them, and the standard cells legalize into the remaining segments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core import KraftwerkPlacer, PlacementResult, PlacerConfig
from ..evaluation.wirelength import hpwl_meters
from ..geometry import PlacementRegion, Rect
from ..legalize import AbacusLegalizer, DetailedImprover
from ..netlist import CellKind, Netlist, Placement


@dataclass
class FloorplanResult:
    placement: Placement
    global_result: PlacementResult
    block_rects: List[Rect]
    block_overlap: float  # residual pairwise overlap between blocks
    seconds: float

    @property
    def hpwl_m(self) -> float:
        return hpwl_meters(self.placement)


class MixedSizePlacer:
    """Global placement + block separation + segment legalization."""

    def __init__(
        self,
        netlist: Netlist,
        region: PlacementRegion,
        config: Optional[PlacerConfig] = None,
        separation_iterations: int = 300,
        improver_passes: int = 2,
    ):
        self.netlist = netlist
        self.region = region
        self.config = config or PlacerConfig()
        self.separation_iterations = separation_iterations
        self.improver_passes = improver_passes
        self.block_indices = [
            int(i)
            for i in netlist.movable_indices
            if netlist.cells[i].kind is CellKind.BLOCK
        ]

    # ------------------------------------------------------------------
    def place(self) -> FloorplanResult:
        t0 = time.perf_counter()
        placer = KraftwerkPlacer(self.netlist, self.region, self.config)
        global_result = placer.place()
        placement = global_result.placement.copy()

        if self.block_indices:
            self._separate_blocks(placement)
            self._snap_blocks_to_rows(placement)
            self._separate_blocks(placement)  # snap may reintroduce overlap

        obstacles = self._obstacles(placement)
        legalizer = AbacusLegalizer(self.region, obstacles=obstacles)
        legal = legalizer.legalize(placement)
        if not legal.success:
            raise RuntimeError(
                f"cell legalization around blocks failed for "
                f"{len(legal.failed_cells)} cells"
            )
        improved = DetailedImprover(
            self.region, max_passes=self.improver_passes, obstacles=obstacles
        ).improve(legal.placement)
        final = improved.placement

        rects = [final.rect_of(i) for i in self.block_indices]
        overlap = 0.0
        for a in range(len(rects)):
            for b in range(a + 1, len(rects)):
                overlap += rects[a].overlap_area(rects[b])
        return FloorplanResult(
            placement=final,
            global_result=global_result,
            block_rects=rects,
            block_overlap=overlap,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    # Block handling
    # ------------------------------------------------------------------
    def _separate_blocks(self, placement: Placement) -> None:
        """Pairwise shove until no two blocks overlap (or budget runs out)."""
        nl = self.netlist
        idx = self.block_indices
        b = self.region.bounds
        for _ in range(self.separation_iterations):
            moved = False
            for a in range(len(idx)):
                for c in range(a + 1, len(idx)):
                    i, j = idx[a], idx[c]
                    dx = placement.x[j] - placement.x[i]
                    dy = placement.y[j] - placement.y[i]
                    pen_x = (nl.widths[i] + nl.widths[j]) / 2.0 - abs(dx)
                    pen_y = (nl.heights[i] + nl.heights[j]) / 2.0 - abs(dy)
                    if pen_x <= 0.0 or pen_y <= 0.0:
                        continue
                    moved = True
                    if pen_x <= pen_y:
                        shift = (pen_x / 2.0 + 1e-6) * (1.0 if dx >= 0 else -1.0)
                        placement.x[i] -= shift
                        placement.x[j] += shift
                    else:
                        shift = (pen_y / 2.0 + 1e-6) * (1.0 if dy >= 0 else -1.0)
                        placement.y[i] -= shift
                        placement.y[j] += shift
            # Clamp blocks into the region after each sweep.
            for i in idx:
                half_w = nl.widths[i] / 2.0
                half_h = nl.heights[i] / 2.0
                placement.x[i] = float(np.clip(placement.x[i], b.xlo + half_w, b.xhi - half_w))
                placement.y[i] = float(np.clip(placement.y[i], b.ylo + half_h, b.yhi - half_h))
            if not moved:
                return

    def _snap_blocks_to_rows(self, placement: Placement) -> None:
        """Align each block's bottom edge with a row boundary."""
        if not self.region.rows:
            return
        nl = self.netlist
        row_h = self.region.row_height
        ylo0 = self.region.bounds.ylo
        for i in self.block_indices:
            bottom = placement.y[i] - nl.heights[i] / 2.0
            snapped = ylo0 + round((bottom - ylo0) / row_h) * row_h
            max_bottom = self.region.bounds.yhi - nl.heights[i]
            snapped = min(max(snapped, ylo0), max_bottom)
            placement.y[i] = snapped + nl.heights[i] / 2.0

    def _obstacles(self, placement: Placement) -> List[Rect]:
        """Blocks plus any fixed cells lying inside the core area."""
        obstacles = [placement.rect_of(i) for i in self.block_indices]
        nl = self.netlist
        for i in nl.fixed_indices:
            rect = placement.rect_of(int(i))
            if rect.overlaps(self.region.bounds) and rect.area > 0:
                inter = rect.intersection(self.region.bounds)
                if inter is not None and inter.area > 0.5 * rect.area:
                    obstacles.append(rect)
        return obstacles
