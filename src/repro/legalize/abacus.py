"""Abacus-style legalization (our stand-in for the Domino final placer [17]).

Cells are processed in order of their global x-coordinate; each is
tentatively inserted into candidate segments near its global position, and
the segment with the lowest quadratic displacement cost wins.  Within a
segment the classic cluster-collapsing recurrence places cells optimally for
weighted quadratic displacement given the insertion order.

The role in the flow matches Domino's: turn a nearly-overlap-free global
placement into a perfectly legal row placement while moving each cell as
little as possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import PlacementRegion, Rect
from ..netlist import CellKind, Placement
from .segments import Segment, build_segments

_INFEASIBLE = float("inf")


@dataclass
class _Cluster:
    """A maximal group of touching cells placed as one rigid block."""

    x: float  # left edge
    e: float  # total weight
    q: float  # sum of e_i * (x_i_desired - offset_i)
    w: float  # total width
    cells: List[int] = field(default_factory=list)
    offsets: List[float] = field(default_factory=list)  # cell offset in cluster


class _SegmentState:
    """Mutable cluster list of one segment."""

    def __init__(self, segment: Segment):
        self.segment = segment
        self.clusters: List[_Cluster] = []
        self.used = 0.0

    def free(self) -> float:
        return self.segment.width - self.used

    def append_cell(
        self, cell_index: int, width: float, weight: float, x_desired: float
    ) -> None:
        """Abacus PlaceRow step: append a cell and collapse clusters."""
        seg = self.segment
        cluster = _Cluster(
            x=min(max(x_desired, seg.xlo), seg.xhi - width),
            e=weight,
            q=weight * x_desired,
            w=width,
            cells=[cell_index],
            offsets=[0.0],
        )
        self.clusters.append(cluster)
        self._collapse()
        self.used += width

    def _collapse(self) -> None:
        while True:
            c = self.clusters[-1]
            # Optimal position, clamped into the segment.
            c.x = min(max(c.q / c.e, self.segment.xlo), self.segment.xhi - c.w)
            if len(self.clusters) < 2:
                return
            prev = self.clusters[-2]
            if prev.x + prev.w <= c.x + 1e-12:
                return
            # Merge c into prev.
            for cell, off in zip(c.cells, c.offsets):
                prev.cells.append(cell)
                prev.offsets.append(prev.w + off)
            prev.q += c.q - c.e * prev.w
            prev.e += c.e
            prev.w += c.w
            self.clusters.pop()

    def trial_cost(
        self, width: float, weight: float, x_desired: float, y_cost: float
    ) -> float:
        """Cost of appending a cell, without mutating the segment.

        Simulates the collapse on lightweight copies of the tail clusters
        and returns the total *incremental* quadratic displacement cost in x
        for all moved cells plus the given fixed y-cost.
        """
        if width > self.free() + 1e-9:
            return _INFEASIBLE
        seg = self.segment
        # Work on scalar copies: (x, e, q, w) tuples.
        tail: List[Tuple[float, float, float, float]] = [
            (c.x, c.e, c.q, c.w) for c in self.clusters
        ]
        tail.append((0.0, weight, weight * x_desired, width))
        idx = len(tail) - 1
        while True:
            x, e, q, w = tail[idx]
            x = min(max(q / e, seg.xlo), seg.xhi - w)
            tail[idx] = (x, e, q, w)
            if idx == 0:
                break
            px, pe, pq, pw = tail[idx - 1]
            if px + pw <= x + 1e-12:
                break
            tail[idx - 1] = (px, pe + e, pq + q - e * pw, pw + w)
            tail.pop()
            idx -= 1
        # The appended cell ends at the right edge of the final cluster.
        x, e, q, w = tail[idx]
        new_cell_x = x + w - width
        return weight * (new_cell_x - x_desired) ** 2 + y_cost

    def positions(self) -> List[Tuple[int, float]]:
        """(cell_index, left-edge x) for every placed cell."""
        out = []
        for c in self.clusters:
            for cell, off in zip(c.cells, c.offsets):
                out.append((cell, c.x + off))
        return out


@dataclass
class LegalizationResult:
    """A legal placement plus displacement statistics."""

    placement: Placement
    mean_displacement: float
    max_displacement: float
    failed_cells: List[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return not self.failed_cells


class AbacusLegalizer:
    """Row legalizer with obstacle-aware segments."""

    def __init__(
        self,
        region: PlacementRegion,
        obstacles: Sequence[Rect] = (),
        row_search_radius: int = 6,
    ):
        self.region = region
        self.obstacles = list(obstacles)
        self.row_search_radius = row_search_radius
        self.segments = build_segments(region, self.obstacles)
        if not self.segments:
            raise ValueError("no free segments to legalize into")

    def legalize(self, placement: Placement) -> LegalizationResult:
        """Legalize all movable standard cells of the placement.

        Movable blocks are *not* legalized here (the floorplanning flow
        places them first and passes them in as obstacles); their positions
        are preserved.
        """
        nl = placement.netlist
        states = [_SegmentState(seg) for seg in self.segments]
        seg_center_y = np.array([s.center_y for s in self.segments])

        targets = [
            i
            for i in nl.movable_indices
            if nl.cells[i].kind is not CellKind.BLOCK
        ]
        # Left-to-right sweep over desired x positions.
        targets.sort(key=lambda i: placement.x[i] - nl.widths[i] / 2.0)

        out = placement.copy()
        failed: List[int] = []
        for i in targets:
            width = float(nl.widths[i])
            weight = float(nl.areas[i])
            x_desired = float(placement.x[i] - width / 2.0)
            y_desired = float(placement.y[i])
            order = np.argsort(np.abs(seg_center_y - y_desired), kind="stable")
            best: Optional[Tuple[float, int]] = None
            rows_tried = 0
            last_row_y = None
            for si in order:
                state = states[si]
                row_y = state.segment.center_y
                if last_row_y is None or row_y != last_row_y:
                    rows_tried += 1
                    last_row_y = row_y
                if rows_tried > self.row_search_radius and best is not None:
                    break
                y_cost = weight * (row_y - y_desired) ** 2
                if best is not None and y_cost >= best[0]:
                    continue
                cost = state.trial_cost(width, weight, x_desired, y_cost)
                if cost < (best[0] if best else _INFEASIBLE):
                    best = (cost, int(si))
            if best is None:
                failed.append(i)
                continue
            state = states[best[1]]
            state.append_cell(i, width, weight, x_desired)

        for state in states:
            row_cy = state.segment.center_y
            for cell_index, left_x in state.positions():
                out.x[cell_index] = left_x + nl.widths[cell_index] / 2.0
                out.y[cell_index] = row_cy
        out.reset_fixed()
        moved = out.displacement_from(placement)
        movable = nl.movable_indices
        return LegalizationResult(
            placement=out,
            mean_displacement=float(moved[movable].mean()) if movable.size else 0.0,
            max_displacement=float(moved[movable].max()) if movable.size else 0.0,
            failed_cells=failed,
        )
