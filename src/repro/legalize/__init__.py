"""Legalization and final placement (the flow role of Domino [17])."""

from typing import Optional, Sequence

from ..geometry import PlacementRegion, Rect
from ..netlist import Placement
from ..observability import NULL_TELEMETRY
from ..perf import improver_alloc_scope
from .segments import Segment, build_segments, total_capacity
from .abacus import AbacusLegalizer, LegalizationResult
from .greedy import TetrisLegalizer
from .detailed import DetailedImprover, ImprovementResult
from .domino import DominoImprover
from .extents import MoveEvaluator
from .improver import VectorImprover
from .vector import VectorAbacusLegalizer

#: legalizer name -> class.  ``abacus`` is the vectorized engine;
#: ``abacus-scalar`` is the original per-cluster implementation, kept as
#: the bit-identical correctness oracle (``tests/test_legalize_vector.py``).
LEGALIZERS = {
    "abacus": VectorAbacusLegalizer,
    "abacus-scalar": AbacusLegalizer,
    "tetris": TetrisLegalizer,
}

#: improver name -> class (``none`` skips improvement entirely).
IMPROVERS = {
    "vector": VectorImprover,
    "scalar": DetailedImprover,
}


def final_placement(
    placement: Placement,
    region: PlacementRegion,
    obstacles: Sequence[Rect] = (),
    improver_passes: int = 7,
    legalizer: str = "abacus",
    improver: str = "vector",
    use_domino: bool = False,
    telemetry=NULL_TELEMETRY,
    bands: int = 0,
    threads: int = 1,
    improver_min_gain: float = 0.0,
) -> Placement:
    """Global placement -> legal, locally optimized placement.

    This is the "final placement step" the paper applies after global
    placement (Section 6.1 uses Domino): Abacus-style legalization followed
    by greedy exact-delta improvement, optionally topped by the
    Domino-style window assignment (``use_domino=True``) which untangles
    permutations beyond the reach of pairwise swaps.

    ``legalizer`` selects the snap engine (``abacus`` — the vectorized
    default, ``abacus-scalar`` — the scalar oracle, or ``tetris``);
    ``improver`` selects the polish stage (``vector`` — batched exact
    deltas, ``scalar`` — the reference implementation, or ``none``).

    ``bands``/``threads`` drive the banded-parallel snap (``abacus``
    only; bit-identical to the serial sweep at every setting) and
    ``improver_min_gain`` the vector improver's relative early exit —
    see :class:`~repro.legalize.vector.VectorAbacusLegalizer` and
    :class:`~repro.legalize.improver.VectorImprover`.
    """
    if legalizer not in LEGALIZERS:
        raise ValueError(
            f"unknown legalizer {legalizer!r}; choose from {sorted(LEGALIZERS)}"
        )
    if improver != "none" and improver not in IMPROVERS:
        raise ValueError(
            f"unknown improver {improver!r}; choose from "
            f"{sorted(IMPROVERS) + ['none']}"
        )
    with telemetry.span("legalize") as leg_span:
        with telemetry.span("snap"):
            snap_kwargs = {}
            if legalizer == "abacus":
                snap_kwargs = {"bands": bands, "threads": threads}
            legal = LEGALIZERS[legalizer](
                region, obstacles=obstacles, **snap_kwargs
            ).legalize(placement)
        if not legal.success:
            raise RuntimeError(
                f"legalization failed for {len(legal.failed_cells)} cells"
            )
        result = legal.placement
        if improver != "none":
            with telemetry.span("improve"), \
                    improver_alloc_scope(len(result.x)):
                improve_kwargs = {}
                if improver == "vector":
                    improve_kwargs = {"min_gain": improver_min_gain}
                improved = IMPROVERS[improver](
                    region, max_passes=improver_passes, obstacles=obstacles,
                    **improve_kwargs
                ).improve(result)
                result = improved.placement
        if use_domino:
            with telemetry.span("domino"):
                result = DominoImprover(
                    region, obstacles=obstacles
                ).improve(result).placement
        leg_span.add("cells", len(legal.placement.x))
        return result


__all__ = [
    "Segment",
    "build_segments",
    "total_capacity",
    "AbacusLegalizer",
    "VectorAbacusLegalizer",
    "TetrisLegalizer",
    "LegalizationResult",
    "DetailedImprover",
    "VectorImprover",
    "DominoImprover",
    "MoveEvaluator",
    "ImprovementResult",
    "LEGALIZERS",
    "IMPROVERS",
    "final_placement",
]
