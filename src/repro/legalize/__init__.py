"""Legalization and final placement (the flow role of Domino [17])."""

from typing import Optional, Sequence

from ..geometry import PlacementRegion, Rect
from ..netlist import Placement
from ..observability import NULL_TELEMETRY
from .segments import Segment, build_segments, total_capacity
from .abacus import AbacusLegalizer, LegalizationResult
from .greedy import TetrisLegalizer
from .detailed import DetailedImprover, ImprovementResult
from .domino import DominoImprover


def final_placement(
    placement: Placement,
    region: PlacementRegion,
    obstacles: Sequence[Rect] = (),
    improver_passes: int = 3,
    legalizer: str = "abacus",
    use_domino: bool = False,
    telemetry=NULL_TELEMETRY,
) -> Placement:
    """Global placement -> legal, locally optimized placement.

    This is the "final placement step" the paper applies after global
    placement (Section 6.1 uses Domino): Abacus-style legalization followed
    by greedy exact-delta swap improvement, optionally topped by the
    Domino-style window assignment (``use_domino=True``) which untangles
    permutations beyond the reach of pairwise swaps.
    """
    with telemetry.span("legalize") as leg_span:
        with telemetry.span("snap"):
            if legalizer == "abacus":
                legal = AbacusLegalizer(region, obstacles=obstacles).legalize(
                    placement
                )
            elif legalizer == "tetris":
                legal = TetrisLegalizer(region, obstacles=obstacles).legalize(
                    placement
                )
            else:
                raise ValueError(f"unknown legalizer {legalizer!r}")
        if not legal.success:
            raise RuntimeError(
                f"legalization failed for {len(legal.failed_cells)} cells"
            )
        with telemetry.span("improve"):
            improved = DetailedImprover(
                region, max_passes=improver_passes
            ).improve(legal.placement)
            result = improved.placement
        if use_domino:
            with telemetry.span("domino"):
                result = DominoImprover(
                    region, obstacles=obstacles
                ).improve(result).placement
        leg_span.add("cells", len(legal.placement.x))
        return result


__all__ = [
    "Segment",
    "build_segments",
    "total_capacity",
    "AbacusLegalizer",
    "TetrisLegalizer",
    "LegalizationResult",
    "DetailedImprover",
    "DominoImprover",
    "ImprovementResult",
    "final_placement",
]
