"""Tetris-style greedy legalization.

The simplest legalizer: sweep cells left-to-right, and for each cell pick
the (segment, position) append that minimizes its own displacement.  Cells
already placed never move again — faster than Abacus but usually with a
larger total displacement; kept both as a fallback and as an ablation
reference.

Candidate segments come from the same nearest-row spatial index the
vectorized Abacus uses (:class:`~repro.legalize.vector.RowIndex`): rows are
visited in increasing vertical distance and the expansion stops as soon as
the vertical cost alone exceeds the best candidate — an exact prune, since
the total cost is bounded below by the vertical term.  On row counts in the
hundreds (100k+-cell circuits) this replaces a full scan over every
segment per cell with a handful of nearby rows.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

import numpy as np

from ..geometry import PlacementRegion, Rect
from ..netlist import CellKind, Placement
from .abacus import LegalizationResult
from .segments import build_segments

_INF = float("inf")


class TetrisLegalizer:
    """Greedy row legalizer with obstacle-aware segments."""

    def __init__(self, region: PlacementRegion, obstacles: Sequence[Rect] = ()):
        self.region = region
        self.obstacles = list(obstacles)
        self.segments = build_segments(region, self.obstacles)
        if not self.segments:
            raise ValueError("no free segments to legalize into")
        # Imported here to avoid a cycle (vector.py imports from abacus.py).
        from .vector import RowIndex

        self.index = RowIndex(self.segments)

    def legalize(self, placement: Placement) -> LegalizationResult:
        nl = placement.netlist
        tails = [seg.xlo for seg in self.segments]
        seg_xhi = [seg.xhi for seg in self.segments]
        seg_cy = [seg.center_y for seg in self.segments]
        row_segments = self.index.row_segments
        ys = self.index.row_y.tolist()
        nrows = len(ys)

        targets = [
            i
            for i in nl.movable_indices
            if nl.cells[i].kind is not CellKind.BLOCK
        ]
        targets.sort(key=lambda i: placement.x[i] - nl.widths[i] / 2.0)

        out = placement.copy()
        failed: List[int] = []
        for i in targets:
            width = float(nl.widths[i])
            x_desired = float(placement.x[i] - width / 2.0)
            y_desired = float(placement.y[i])
            best_cost = _INF
            best: Optional[int] = None
            best_x = 0.0
            # Two-pointer nearest-row expansion, ties to the lower row.
            hi = bisect_left(ys, y_desired)
            lo = hi - 1
            while lo >= 0 or hi < nrows:
                if lo < 0:
                    r = hi
                    hi += 1
                elif hi >= nrows:
                    r = lo
                    lo -= 1
                elif y_desired - ys[lo] <= ys[hi] - y_desired:
                    r = lo
                    lo -= 1
                else:
                    r = hi
                    hi += 1
                y_cost = (ys[r] - y_desired) ** 2
                if y_cost >= best_cost:
                    # Rows only get farther from here on; cost >= y-cost.
                    break
                for si in row_segments[r]:
                    # Clamp the desired left edge into the segment so a cell
                    # near the region's right edge can still slide in.
                    x_pos = x_desired
                    limit = seg_xhi[si] - width
                    if x_pos > limit:
                        x_pos = limit
                    if x_pos < tails[si]:
                        x_pos = tails[si]
                    if x_pos + width > seg_xhi[si] + 1e-9:
                        continue
                    cost = (x_pos - x_desired) ** 2 + y_cost
                    if cost < best_cost:
                        best_cost = cost
                        best = si
                        best_x = x_pos
            if best is None:
                failed.append(i)
                continue
            out.x[i] = best_x + width / 2.0
            out.y[i] = seg_cy[best]
            tails[best] = best_x + width
        out.reset_fixed()
        moved = out.displacement_from(placement)
        movable = nl.movable_indices
        return LegalizationResult(
            placement=out,
            mean_displacement=float(moved[movable].mean()) if movable.size else 0.0,
            max_displacement=float(moved[movable].max()) if movable.size else 0.0,
            failed_cells=failed,
        )
