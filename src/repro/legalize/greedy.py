"""Tetris-style greedy legalization.

The simplest legalizer: sweep cells left-to-right, and for each cell pick
the (segment, position) append that minimizes its own displacement.  Cells
already placed never move again — faster than Abacus but usually with a
larger total displacement; kept both as a fallback and as an ablation
reference.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..geometry import PlacementRegion, Rect
from ..netlist import CellKind, Placement
from .abacus import LegalizationResult
from .segments import build_segments


class TetrisLegalizer:
    """Greedy row legalizer with obstacle-aware segments."""

    def __init__(self, region: PlacementRegion, obstacles: Sequence[Rect] = ()):
        self.region = region
        self.obstacles = list(obstacles)
        self.segments = build_segments(region, self.obstacles)
        if not self.segments:
            raise ValueError("no free segments to legalize into")

    def legalize(self, placement: Placement) -> LegalizationResult:
        nl = placement.netlist
        tails = np.array([seg.xlo for seg in self.segments])
        seg_xhi = np.array([seg.xhi for seg in self.segments])
        seg_cy = np.array([seg.center_y for seg in self.segments])

        targets = [
            i
            for i in nl.movable_indices
            if nl.cells[i].kind is not CellKind.BLOCK
        ]
        targets.sort(key=lambda i: placement.x[i] - nl.widths[i] / 2.0)

        out = placement.copy()
        failed: List[int] = []
        for i in targets:
            width = float(nl.widths[i])
            x_desired = float(placement.x[i] - width / 2.0)
            y_desired = float(placement.y[i])
            # Clamp the desired left edge into each segment so a cell near
            # the region's right edge can still slide in.
            x_pos = np.maximum(tails, np.minimum(x_desired, seg_xhi - width))
            feasible = x_pos + width <= seg_xhi + 1e-9
            if not feasible.any():
                failed.append(i)
                continue
            cost = (x_pos - x_desired) ** 2 + (seg_cy - y_desired) ** 2
            cost[~feasible] = np.inf
            si = int(np.argmin(cost))
            out.x[i] = x_pos[si] + width / 2.0
            out.y[i] = seg_cy[si]
            tails[si] = x_pos[si] + width
        out.reset_fixed()
        moved = out.displacement_from(placement)
        movable = nl.movable_indices
        return LegalizationResult(
            placement=out,
            mean_displacement=float(moved[movable].mean()) if movable.size else 0.0,
            max_displacement=float(moved[movable].max()) if movable.size else 0.0,
            failed_cells=failed,
        )
