"""Vectorized detailed-placement improvement.

Same move families as the scalar :class:`~repro.legalize.detailed.DetailedImprover`
— adjacent-pair swaps, cross-row swaps, optimal median slides — but priced
in batches with :class:`~repro.legalize.extents.MoveEvaluator` instead of
per-move Python net walks.  Each pass:

1. generates every candidate move of one family across all rows at once
   (from a freshly sorted row view, so spans are never stale),
2. computes the *exact* HPWL delta of every candidate in a handful of
   numpy passes,
3. accepts improving moves best-first over a few pricing rounds: a move is
   taken only if none of the cells in its row window (the cells whose
   positions its legality check read) have moved, and none of its nets
   were touched by an earlier acceptance in the same round — net-blocked
   candidates stay alive and are re-priced against the updated placement
   in the next round, so one candidate generation approaches the move
   yield of a fully sequential greedy sweep at batch cost.

The dirty-net filter makes every applied delta exact and the frozen-window
rule makes every accepted move legal, so each pass monotonically decreases
HPWL just like the scalar improver — at a small fraction of the cost.
After the first pass, candidate generation is restricted to a worklist of
cells near the previous pass's accepted moves; passes repeat until no move
is accepted or ``max_passes`` is reached.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..evaluation.wirelength import net_hpwl
from ..geometry import PlacementRegion, Rect
from ..netlist import CellKind, Placement
from .detailed import ImprovementResult
from .extents import MoveEvaluator

_EPS = 1e-9


class _RowView:
    """Movable standard cells grouped by row, each row sorted by x.

    Also carries, per listed cell, its free-span bounds (neighbor edges or
    region walls) and its left/right neighbors (-1 at row ends).
    """

    def __init__(self, placement: Placement, region: PlacementRegion,
                 std: np.ndarray):
        ys = np.round(placement.y[std], 6) if std.size else np.zeros(0)
        order = (
            np.lexsort((placement.x[std], ys)) if std.size
            else np.zeros(0, np.int64)
        )
        self.cells = std[order]
        keys = ys[order]
        n = len(self.cells)
        if n:
            breaks = np.flatnonzero(keys[1:] != keys[:-1]) + 1
            self.row_start = np.concatenate(([0], breaks, [n]))
        else:
            self.row_start = np.array([0, 0], dtype=np.int64)

        nl = placement.netlist
        x = placement.x[self.cells]
        half = nl.widths[self.cells] / 2.0
        prev = np.empty(n, dtype=np.int64)
        nxt = np.empty(n, dtype=np.int64)
        left = np.empty(n)
        right = np.empty(n)
        bounds = region.bounds
        if n:
            prev[1:] = self.cells[:-1]
            nxt[:-1] = self.cells[1:]
            left[1:] = x[:-1] + half[:-1]
            right[:-1] = x[1:] - half[1:]
        starts = self.row_start[:-1]
        ends = self.row_start[1:] - 1
        first = starts[starts < n]
        last = ends[ends >= 0]
        prev[first] = -1
        nxt[last] = -1
        left[first] = bounds.xlo
        right[last] = bounds.xhi
        self.prev = prev
        self.nxt = nxt
        self.left = left
        self.right = right

    @property
    def num_rows(self) -> int:
        return len(self.row_start) - 1

    def row_slice(self, r: int) -> slice:
        return slice(int(self.row_start[r]), int(self.row_start[r + 1]))


class VectorImprover:
    """Batched greedy detailed placement with exact HPWL deltas."""

    def __init__(
        self,
        region: PlacementRegion,
        max_passes: int = 8,
        obstacles: Tuple[Rect, ...] = (),
        cross_row_passes: int = 3,
        min_gain: float = 0.0,
    ):
        self.region = region
        self.max_passes = max_passes
        self.obstacles = list(obstacles)
        # Cross-row swaps have by far the worst accepted-moves-per-ms of
        # the three families once the placement settles; run them only in
        # the first few passes.
        self.cross_row_passes = cross_row_passes
        # Early exit: stop when a pass improves HPWL by less than
        # ``min_gain`` (relative to the pre-improvement HPWL).  The late
        # passes chase a long tail of tiny moves; at 100k+ cells they cost
        # seconds for basis-point gains.  0.0 keeps every pass.
        self.min_gain = min_gain

    # ------------------------------------------------------------------
    def improve(self, placement: Placement) -> ImprovementResult:
        nl = placement.netlist
        out = placement.copy()
        ev = MoveEvaluator(nl)
        movable = nl.movable_indices
        std = np.array(
            [int(i) for i in movable
             if nl.cells[int(i)].kind is not CellKind.BLOCK],
            dtype=np.int64,
        )
        hpwl_before = float(net_hpwl(out).sum())
        accepted = 0
        passes_run = 0
        # Worklists: everything is eligible in pass 1.  Afterwards swap
        # candidates are re-priced only when their window saw a move last
        # pass; slides also re-price when a net endpoint moved (their
        # optimal target shifts even if the row around them did not).
        swap_eligible: Optional[np.ndarray] = None
        slide_eligible: Optional[np.ndarray] = None
        # Row views are rebuilt lazily: only when the previous family (or
        # pass) actually moved something, since stale sorted order would
        # break the fit checks but an untouched placement cannot go stale.
        view: Optional[_RowView] = None
        view_stale = True
        for _ in range(self.max_passes):
            passes_run += 1
            moved = np.zeros(nl.num_cells, dtype=bool)
            pass_accepted = 0
            pass_gain = 0.0
            if view_stale or view is None:
                view = _RowView(out, self.region, std)
            n, g = self._adjacent_swaps(out, ev, view, swap_eligible, moved)
            if n:
                view = _RowView(out, self.region, std)
            pass_accepted += n
            pass_gain += g
            if passes_run <= self.cross_row_passes:
                n, g = self._cross_row_swaps(
                    out, ev, view, swap_eligible, moved
                )
                if n:
                    view = _RowView(out, self.region, std)
                pass_accepted += n
                pass_gain += g
            n, g = self._slide_to_median(out, ev, view, slide_eligible, moved)
            view_stale = n > 0
            pass_accepted += n
            pass_gain += g
            accepted += pass_accepted
            if pass_accepted == 0:
                break
            # Relative early exit: the late passes chase a long tail of
            # tiny moves.  When a whole pass recovers less than
            # ``min_gain`` of the starting HPWL, stop here.
            if (
                self.min_gain > 0.0
                and pass_gain < self.min_gain * max(hpwl_before, 1.0)
            ):
                break
            swap_eligible = moved
            slide_eligible = self._next_worklist(ev, nl, moved)
        hpwl_after = float(net_hpwl(out).sum())
        return ImprovementResult(
            placement=out,
            passes=passes_run,
            moves_accepted=accepted,
            hpwl_before_um=hpwl_before,
            hpwl_after_um=hpwl_after,
        )

    @staticmethod
    def _next_worklist(
        ev: MoveEvaluator, nl, moved: np.ndarray
    ) -> np.ndarray:
        """Cells near last pass's moves: moved or sharing a moved cell's net."""
        if not moved.any():
            return moved
        moved_nets = np.zeros(max(nl.num_nets, 1), dtype=bool)
        moved_nets[ev.inc_net[moved[ev.inc_cell]]] = True
        hot = np.bincount(
            ev.inc_cell,
            weights=moved_nets[ev.inc_net].astype(np.float64),
            minlength=nl.num_cells,
        ) > 0
        return hot | moved

    @staticmethod
    def _window_eligible(
        windows: np.ndarray, eligible: Optional[np.ndarray]
    ) -> np.ndarray:
        """Mask of candidates with any (non-padding) window cell eligible."""
        if eligible is None:
            return np.ones(len(windows), dtype=bool)
        safe = np.where(windows >= 0, windows, 0)
        return ((windows >= 0) & eligible[safe]).any(axis=1)

    # ------------------------------------------------------------------
    def _obstacle_ok(
        self, new_x: np.ndarray, new_y: np.ndarray, widths: np.ndarray,
        heights: np.ndarray,
    ) -> np.ndarray:
        """Mask of candidates whose new rect avoids every obstacle."""
        ok = np.ones(len(new_x), dtype=bool)
        for obs in self.obstacles:
            hit = (
                (new_x - widths / 2.0 < obs.xhi - _EPS)
                & (new_x + widths / 2.0 > obs.xlo + _EPS)
                & (new_y - heights / 2.0 < obs.yhi - _EPS)
                & (new_y + heights / 2.0 > obs.ylo + _EPS)
            )
            ok &= ~hit
        return ok

    def _accept_rounds(
        self,
        out: Placement,
        ev: MoveEvaluator,
        moved: np.ndarray,
        windows: np.ndarray,
        cell_a: np.ndarray,
        new_ax: np.ndarray,
        new_ay: np.ndarray,
        cell_b: np.ndarray = None,
        new_bx: np.ndarray = None,
        new_by: np.ndarray = None,
        max_rounds: int = 6,
        x_only: bool = False,
    ) -> Tuple[int, float]:
        """Accept improving moves best-first over several pricing rounds.

        Returns ``(moves_taken, hpwl_gain_um)`` — the gain is the exact
        summed improvement of the applied deltas (positive)."""
        nl = out.netlist
        locked = bytearray(nl.num_cells)
        num_nets = max(nl.num_nets, 1)
        # Pure-Python structures: the accept loop touches a few cells and
        # nets per candidate, where list indexing beats numpy fancy
        # indexing by an order of magnitude.
        win_list = windows.tolist()
        cell_ptr = ev.cell_ptr_list
        inc_net = ev.inc_net_list
        a_list = cell_a.tolist()
        b_list = cell_b.tolist() if cell_b is not None else None
        x, y = out.x, out.y
        two = cell_b is not None
        alive = np.arange(len(cell_a))
        taken = 0
        gain = 0.0
        for _ in range(max_rounds):
            if not alive.size:
                break
            deltas = ev.deltas(
                x, y, cell_a[alive], new_ax[alive], new_ay[alive],
                cell_b[alive] if two else None,
                new_bx[alive] if two else None,
                new_by[alive] if two else None,
                x_only=x_only,
            )
            cand = np.flatnonzero(deltas < -_EPS)
            if not cand.size:
                break
            order = cand[np.argsort(deltas[cand], kind="stable")]
            dirty = bytearray(num_nets)
            retry = []
            round_taken = 0
            for mi in order.tolist():
                m = int(alive[mi])
                ok = True
                for c in win_list[m]:
                    if c >= 0 and locked[c]:
                        ok = False
                        break
                if not ok:
                    continue
                ca = a_list[m]
                nets = inc_net[cell_ptr[ca] : cell_ptr[ca + 1]]
                if two:
                    cb = b_list[m]
                    nets = nets + inc_net[cell_ptr[cb] : cell_ptr[cb + 1]]
                clean = True
                for j in nets:
                    if dirty[j]:
                        clean = False
                        break
                if not clean:
                    retry.append(m)
                    continue
                x[ca] = new_ax[m]
                y[ca] = new_ay[m]
                moved[ca] = True
                if two:
                    x[cb] = new_bx[m]
                    y[cb] = new_by[m]
                    moved[cb] = True
                for c in win_list[m]:
                    if c >= 0:
                        locked[c] = 1
                for j in nets:
                    dirty[j] = 1
                round_taken += 1
                gain -= float(deltas[mi])
            taken += round_taken
            if round_taken == 0:
                break
            alive = np.array(retry, dtype=np.int64)
        if alive.size:
            # Still-improving but net-blocked candidates: seed the next
            # pass's worklist so they are re-priced instead of lost.
            moved[cell_a[alive]] = True
            if two:
                moved[cell_b[alive]] = True
        return taken, gain

    # ------------------------------------------------------------------
    def _adjacent_swaps(
        self, out: Placement, ev: MoveEvaluator, view: _RowView,
        eligible: Optional[np.ndarray], moved: np.ndarray,
    ) -> Tuple[int, float]:
        nl = out.netlist
        same_row = view.nxt >= 0
        a = view.cells[same_row]
        if not a.size:
            return 0, 0.0
        b = view.nxt[same_row]
        # The pair's combined footprint is unchanged, so only the two
        # swapped cells need locking.
        windows = np.stack((a, b), axis=1)
        keep = self._window_eligible(windows, eligible)
        a, b, windows = a[keep], b[keep], windows[keep]
        if not a.size:
            return 0, 0.0
        wa = nl.widths[a]
        wb = nl.widths[b]
        left_edge = out.x[a] - wa / 2.0
        new_bx = left_edge + wb / 2.0
        new_ax = left_edge + wb + wa / 2.0
        new_ay = out.y[a]
        new_by = out.y[b]
        if self.obstacles:
            ok = self._obstacle_ok(
                new_ax, new_ay, wa, nl.heights[a]
            ) & self._obstacle_ok(new_bx, new_by, wb, nl.heights[b])
            a, b, windows = a[ok], b[ok], windows[ok]
            new_ax, new_ay = new_ax[ok], new_ay[ok]
            new_bx, new_by = new_bx[ok], new_by[ok]
            if not a.size:
                return 0, 0.0
        return self._accept_rounds(
            out, ev, moved, windows, a, new_ax, new_ay, b, new_bx, new_by,
            x_only=True,
        )

    # ------------------------------------------------------------------
    def _cross_row_swaps(
        self, out: Placement, ev: MoveEvaluator, view: _RowView,
        eligible: Optional[np.ndarray], moved: np.ndarray,
    ) -> Tuple[int, float]:
        nl = out.netlist
        pa_list = []
        pb_list = []
        for r in range(view.num_rows - 1):
            lo = view.row_slice(r)
            up = view.row_slice(r + 1)
            n_lo = lo.stop - lo.start
            n_up = up.stop - up.start
            if not n_lo or not n_up:
                continue
            lx = out.x[view.cells[lo]]
            ux = out.x[view.cells[up]]
            k = np.searchsorted(ux, lx)
            pos_a = np.repeat(np.arange(n_lo), 2)
            pos_b = np.stack((k - 1, k), axis=1).ravel()
            valid = (pos_b >= 0) & (pos_b < n_up)
            pa_list.append(pos_a[valid] + lo.start)
            pb_list.append(pos_b[valid] + up.start)
        if not pa_list:
            return 0, 0.0
        pa = np.concatenate(pa_list)
        pb = np.concatenate(pb_list)
        a = view.cells[pa]
        b = view.cells[pb]
        # Window: both cells plus their four row neighbors (their spans
        # are read by the fit check and their widths change at the slot).
        windows = np.stack(
            (a, b, view.prev[pa], view.nxt[pa], view.prev[pb], view.nxt[pb]),
            axis=1,
        )
        keep = self._window_eligible(windows, eligible)
        pa, pb, windows = pa[keep], pb[keep], windows[keep]
        if not pa.size:
            return 0, 0.0
        a, b = a[keep], b[keep]
        # Fit checks: each candidate at the occupant's center in its span.
        span_a = view.right[pa] - view.left[pa]
        span_b = view.right[pb] - view.left[pb]
        wa = nl.widths[a]
        wb = nl.widths[b]
        xa = out.x[a]
        xb = out.x[b]
        fits = (
            (wb <= span_a + _EPS)
            & (xa - wb / 2.0 >= view.left[pa] - _EPS)
            & (xa + wb / 2.0 <= view.right[pa] + _EPS)
            & (wa <= span_b + _EPS)
            & (xb - wa / 2.0 >= view.left[pb] - _EPS)
            & (xb + wa / 2.0 <= view.right[pb] + _EPS)
        )
        a, b, windows = a[fits], b[fits], windows[fits]
        if not a.size:
            return 0, 0.0
        new_ax, new_ay = out.x[b], out.y[b]
        new_bx, new_by = out.x[a], out.y[a]
        if self.obstacles:
            ok = self._obstacle_ok(
                new_ax, new_ay, nl.widths[a], nl.heights[a]
            ) & self._obstacle_ok(new_bx, new_by, nl.widths[b], nl.heights[b])
            a, b, windows = a[ok], b[ok], windows[ok]
            new_ax, new_ay = new_ax[ok], new_ay[ok]
            new_bx, new_by = new_bx[ok], new_by[ok]
            if not a.size:
                return 0, 0.0
        return self._accept_rounds(
            out, ev, moved, windows, a, new_ax, new_ay, b, new_bx, new_by
        )

    # ------------------------------------------------------------------
    def _slide_to_median(
        self, out: Placement, ev: MoveEvaluator, view: _RowView,
        eligible: Optional[np.ndarray], moved: np.ndarray,
    ) -> Tuple[int, float]:
        nl = out.netlist
        if not view.cells.size:
            return 0, 0.0
        # Window: the cell and both neighbors (their spans read this x).
        # Filter by worklist *before* pricing so median targets are only
        # computed for the (usually few) still-hot cells.
        windows = np.stack((view.cells, view.prev, view.nxt), axis=1)
        keep = self._window_eligible(windows, eligible)
        pos = np.flatnonzero(keep)
        if not pos.size:
            return 0, 0.0
        cells = view.cells[pos]
        windows = windows[keep]
        targets = self._median_targets(
            out, ev, nl.num_cells, cells if eligible is not None else None
        )
        t = targets[cells]
        have = np.isfinite(t)
        pos, cells, t, windows = pos[have], cells[have], t[have], windows[have]
        if not cells.size:
            return 0, 0.0
        half = nl.widths[cells] / 2.0
        new_x = np.minimum(
            np.maximum(t, view.left[pos] + half), view.right[pos] - half
        )
        far = np.abs(new_x - out.x[cells]) >= _EPS
        cells, new_x, windows = cells[far], new_x[far], windows[far]
        if not cells.size:
            return 0, 0.0
        new_y = out.y[cells]
        if self.obstacles:
            ok = self._obstacle_ok(
                new_x, new_y, nl.widths[cells], nl.heights[cells]
            )
            cells, windows = cells[ok], windows[ok]
            new_x, new_y = new_x[ok], new_y[ok]
            if not cells.size:
                return 0, 0.0
        return self._accept_rounds(
            out, ev, moved, windows, cells, new_x, new_y, x_only=True
        )

    def _median_targets(
        self, out: Placement, ev: MoveEvaluator, num_cells: int,
        cells: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """1-D optimal x per cell: median of exclusive net-extent endpoints.

        NaN where a cell has no nets with other cells' pins (or, when a
        ``cells`` subset is given, outside the subset).
        """
        excl_min, excl_max, inc_cell = ev.exclusive_x(out.x, cells)
        fin = np.isfinite(excl_min) & np.isfinite(excl_max)
        cell_rep = np.concatenate((inc_cell[fin], inc_cell[fin]))
        pts = np.concatenate((excl_min[fin], excl_max[fin]))
        if not pts.size:
            return np.full(num_cells, np.nan)
        order = np.lexsort((pts, cell_rep))
        cell_s = cell_rep[order]
        pts_s = pts[order]
        rng = np.arange(num_cells)
        start = np.searchsorted(cell_s, rng)
        count = np.searchsorted(cell_s, rng, side="right") - start
        targets = np.full(num_cells, np.nan)
        mid = start + count // 2
        odd = (count % 2 == 1)
        even = (count > 0) & ~odd
        targets[odd] = pts_s[mid[odd]]
        safe_mid = np.minimum(mid[even], len(pts_s) - 1)
        targets[even] = 0.5 * (pts_s[safe_mid - 1] + pts_s[safe_mid])
        return targets
