"""Row segments: the free intervals of each standard-cell row.

Fixed cells and placed macro blocks are obstacles that split rows into
segments; legalizers place standard cells into segments only.  This is what
lets the same legalization code serve both pure standard-cell designs and
the mixed block/cell floorplanning flow (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..geometry import PlacementRegion, Rect, Row


@dataclass
class Segment:
    """One free interval of a row."""

    row: Row
    xlo: float
    xhi: float

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def y(self) -> float:
        return self.row.y

    @property
    def center_y(self) -> float:
        return self.row.center_y


def build_segments(
    region: PlacementRegion,
    obstacles: Sequence[Rect] = (),
    min_width: float = 1e-9,
) -> List[Segment]:
    """Split every row of the region into obstacle-free segments."""
    if not region.rows:
        raise ValueError("region has no rows to build segments from")
    segments: List[Segment] = []
    for row in region.rows:
        row_rect = row.bounds
        # Collect obstacle x-intervals that vertically intersect this row.
        blocked: List[tuple] = []
        for obs in obstacles:
            if obs.ylo < row_rect.yhi and row_rect.ylo < obs.yhi:
                xlo = max(obs.xlo, row.xlo)
                xhi = min(obs.xhi, row.xhi)
                if xhi > xlo:
                    blocked.append((xlo, xhi))
        blocked.sort()
        cursor = row.xlo
        for xlo, xhi in blocked:
            if xlo - cursor > min_width:
                segments.append(Segment(row=row, xlo=cursor, xhi=xlo))
            cursor = max(cursor, xhi)
        if row.xhi - cursor > min_width:
            segments.append(Segment(row=row, xlo=cursor, xhi=row.xhi))
    return segments


def total_capacity(segments: Iterable[Segment]) -> float:
    """Total placeable width over the given segments."""
    return sum(seg.width for seg in segments)
