"""Batched exact net-extent evaluation for detailed-placement moves.

The scalar improvers (:mod:`repro.legalize.detailed`,
:mod:`repro.legalize.domino`) price every candidate move by re-walking the
affected nets' pins in Python — exact, but ~30 us per move, which made the
improvement pass the dominant cost of the whole flow.  This module prices
*thousands* of candidate moves in a handful of numpy passes while keeping
the deltas exact:

- :class:`MoveEvaluator` holds CSR views of the netlist (net -> pins and
  cell -> nets) plus the current per-net bounding boxes, and evaluates the
  exact HPWL delta of a batch of one- or two-cell moves by gathering every
  affected net's pins, overriding the moved cells' coordinates, and
  reducing per (move, net) segment;
- :meth:`MoveEvaluator.exclusive_x` returns, for every (cell, net)
  incidence, the net's x extent *excluding that cell's pins* — the
  ingredient for vectorized optimal-slide targets (the 1-D HPWL optimum is
  a median of these exclusive interval endpoints).

Deltas are exact as long as the moves actually applied together touch
disjoint net sets; the improver guarantees that with a dirty-net filter.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..evaluation.wirelength import pin_arrays
from ..netlist import Netlist


def _segment_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat index array covering ``[starts[i], starts[i]+counts[i])`` runs."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
    return np.arange(total, dtype=np.int64) + offsets


class MoveEvaluator:
    """Exact, batched HPWL deltas over a fixed netlist.

    Construction is O(pins log pins); every :meth:`deltas` call is a few
    numpy passes over the pins of the affected nets only.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        arrays = pin_arrays(netlist)
        self.net_start = arrays.net_start
        self.pin_cell = arrays.pin_cell
        self.pin_dx = arrays.pin_dx
        self.pin_dy = arrays.pin_dy
        self.degree = arrays.degree.astype(np.int64)
        num_nets = len(self.degree)
        net_of_pin = np.repeat(np.arange(num_nets, dtype=np.int64), self.degree)

        # Unique (cell, net) incidence pairs in (cell, net) order -> CSR
        # over cells.  A cell with several pins on one net appears once.
        order = np.lexsort((net_of_pin, self.pin_cell))
        c_sorted = self.pin_cell[order]
        n_sorted = net_of_pin[order]
        if c_sorted.size:
            first = np.concatenate(
                ([True], (c_sorted[1:] != c_sorted[:-1]) | (n_sorted[1:] != n_sorted[:-1]))
            )
        else:
            first = np.zeros(0, dtype=bool)
        self.inc_cell = c_sorted[first]
        self.inc_net = n_sorted[first]
        self.cell_ptr = np.searchsorted(
            self.inc_cell, np.arange(netlist.num_cells + 1)
        )
        # Python-list mirrors for hot scalar loops (list indexing is an
        # order of magnitude faster than numpy scalar indexing).
        self.cell_ptr_list = self.cell_ptr.tolist()
        self.inc_net_list = self.inc_net.tolist()

    # ------------------------------------------------------------------
    def nets_of(self, cell: int) -> np.ndarray:
        """Net indices incident to *cell* (each once)."""
        return self.inc_net[self.cell_ptr[cell] : self.cell_ptr[cell + 1]]

    # ------------------------------------------------------------------
    def extents(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-net (min_x, max_x, min_y, max_y) at the given coordinates."""
        px = x[self.pin_cell] + self.pin_dx
        py = y[self.pin_cell] + self.pin_dy
        seg = self.net_start[:-1]
        return (
            np.minimum.reduceat(px, seg),
            np.maximum.reduceat(px, seg),
            np.minimum.reduceat(py, seg),
            np.maximum.reduceat(py, seg),
        )

    def exclusive_x(
        self, x: np.ndarray, cells: np.ndarray = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exclusive x extents per (cell, net) incidence pair.

        Returns ``(excl_min, excl_max, inc_cell)``: per incidence pair, the
        min/max pin x of the net over pins whose cell differs from the
        incidence cell (``+inf`` / ``-inf`` where the net has no other
        cells' pins), plus the incidence's cell index.  With ``cells``
        given, only that subset's incidences are evaluated — O(pins of the
        subset's nets) instead of O(all pins) — which keeps late, nearly
        converged improvement passes cheap.
        """
        if cells is None:
            inc_cell = self.inc_cell
            inc_net = self.inc_net
            nets = None
            deg = self.degree
            seg = self.net_start[:-1]
            seg_end = self.net_start[1:] - 1
            px = x[self.pin_cell] + self.pin_dx
            cell_f = self.pin_cell
            net_key = np.repeat(np.arange(len(deg), dtype=np.int64), deg)
        else:
            cnt = self.cell_ptr[cells + 1] - self.cell_ptr[cells]
            inc_idx = _segment_gather(self.cell_ptr[cells], cnt)
            inc_cell = self.inc_cell[inc_idx]
            inc_net = self.inc_net[inc_idx]
            nets = np.unique(inc_net)
            deg = self.degree[nets]
            flat = _segment_gather(self.net_start[nets], deg)
            ends = np.cumsum(deg)
            seg = ends - deg
            seg_end = ends - 1
            cell_f = self.pin_cell[flat]
            px = x[cell_f] + self.pin_dx[flat]
            net_key = np.repeat(np.arange(len(nets), dtype=np.int64), deg)

        order = np.lexsort((px, net_key))
        px_s = px[order]
        cell_s = cell_f[order]
        # Smallest pin and the smallest pin of any *other* cell.
        min1 = px_s[seg]
        min1_cell = cell_s[seg]
        other = cell_s != np.repeat(min1_cell, deg)
        min2 = np.minimum.reduceat(np.where(other, px_s, np.inf), seg)
        # Largest pin and the largest pin of any other cell.
        max1 = px_s[seg_end]
        max1_cell = cell_s[seg_end]
        other_hi = cell_s != np.repeat(max1_cell, deg)
        max2 = np.maximum.reduceat(np.where(other_hi, px_s, -np.inf), seg)

        n = inc_net if nets is None else np.searchsorted(nets, inc_net)
        excl_min = np.where(inc_cell != min1_cell[n], min1[n], min2[n])
        excl_max = np.where(inc_cell != max1_cell[n], max1[n], max2[n])
        return excl_min, excl_max, inc_cell

    # ------------------------------------------------------------------
    def deltas(
        self,
        x: np.ndarray,
        y: np.ndarray,
        cell_a: np.ndarray,
        new_ax: np.ndarray,
        new_ay: np.ndarray,
        cell_b: np.ndarray = None,
        new_bx: np.ndarray = None,
        new_by: np.ndarray = None,
        x_only: bool = False,
    ) -> np.ndarray:
        """Exact HPWL delta (um) of each candidate move.

        Each move relocates ``cell_a[m]`` to ``(new_ax[m], new_ay[m])`` and,
        when ``cell_b`` is given, simultaneously ``cell_b[m]`` to
        ``(new_bx[m], new_by[m])``.  Every other cell stays put.  Negative
        deltas are improvements.  ``x_only=True`` asserts that no move
        changes any y coordinate, so the (cancelling) y extents are skipped
        entirely — about half the work for row-internal moves.
        """
        nmoves = len(cell_a)
        if nmoves == 0:
            return np.zeros(0)
        # (move, net) pairs: nets of a (plus nets of b), deduped per move.
        cnt_a = self.cell_ptr[cell_a + 1] - self.cell_ptr[cell_a]
        idx_a = _segment_gather(self.cell_ptr[cell_a], cnt_a)
        move_of = np.repeat(np.arange(nmoves, dtype=np.int64), cnt_a)
        nets = self.inc_net[idx_a]
        num_nets = len(self.degree)
        if cell_b is not None:
            cnt_b = self.cell_ptr[cell_b + 1] - self.cell_ptr[cell_b]
            idx_b = _segment_gather(self.cell_ptr[cell_b], cnt_b)
            move_of = np.concatenate(
                (move_of, np.repeat(np.arange(nmoves, dtype=np.int64), cnt_b))
            )
            nets = np.concatenate((nets, self.inc_net[idx_b]))
            # Both cells may share a net; dedup the (move, net) pairs.
            # Sort + diff beats hash-based np.unique at these sizes.
            pair_key = np.sort(move_of * num_nets + nets)
            first = np.empty(len(pair_key), dtype=bool)
            first[0] = True
            np.not_equal(pair_key[1:], pair_key[:-1], out=first[1:])
            pair_key = pair_key[first]
            pair_move = pair_key // num_nets
            pair_net = pair_key % num_nets
        else:
            # One cell per move: its incident nets are already unique.
            pair_move = move_of
            pair_net = nets

        # Gather every affected net's pins, one flat segment per pair.
        # Everything from here on is O(affected pins), never O(all pins).
        cnt = self.degree[pair_net]
        flat = _segment_gather(self.net_start[pair_net], cnt)
        fmove = np.repeat(pair_move, cnt)
        fcell = self.pin_cell[flat]
        fdx = self.pin_dx[flat]
        px_old = x[fcell] + fdx
        seg = np.concatenate(([0], np.cumsum(cnt)[:-1]))
        is_a = fcell == cell_a[fmove]
        px = np.where(is_a, new_ax[fmove] + fdx, px_old)
        if cell_b is not None:
            is_b = fcell == cell_b[fmove]
            px = np.where(is_b, new_bx[fmove] + fdx, px)
        # Fuse every extent reduction into ONE min + ONE max reduceat over
        # stacked (old-x, new-x[, old-y, new-y]) blocks — reduceat's
        # per-call overhead dominates at typical batch sizes.
        blocks = [px_old, px]
        if not x_only:
            fdy = self.pin_dy[flat]
            py_old = y[fcell] + fdy
            py = np.where(is_a, new_ay[fmove] + fdy, py_old)
            if cell_b is not None:
                py = np.where(is_b, new_by[fmove] + fdy, py)
            blocks += [py_old, py]
        total = len(px)
        stacked = np.concatenate(blocks)
        segs = np.concatenate(
            [seg + k * total for k in range(len(blocks))]
        )
        ext = np.maximum.reduceat(stacked, segs) - np.minimum.reduceat(
            stacked, segs
        )
        npairs = len(seg)
        pair_delta = ext[npairs : 2 * npairs] - ext[:npairs]
        if not x_only:
            pair_delta = pair_delta + (
                ext[3 * npairs :] - ext[2 * npairs : 3 * npairs]
            )
        return np.bincount(pair_move, weights=pair_delta, minlength=nmoves)
