"""Domino-style window assignment improvement [17].

Domino formulates detailed placement as a sequence of transportation
problems: within a small window, cells are optimally re-assigned to
positions by a min-cost matching.  This implementation slides windows over
pairs of adjacent rows, builds the cost matrix "cell -> slot" from each
cell's independent HPWL contribution (other cells held at their current
positions), solves the assignment exactly (Hungarian method via
``scipy.optimize.linear_sum_assignment``), repacks the affected row spans
to restore exact legality, and keeps the window's result only if the true
HPWL of the affected nets improved.

Compared to the greedy pair-swap improver (:mod:`repro.legalize.detailed`),
window assignment escapes local minima that need 3+ simultaneous moves, at
a higher cost per window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..geometry import PlacementRegion
from ..netlist import CellKind, Placement
from .detailed import ImprovementResult


@dataclass
class _Slot:
    """A target location: row y plus the slot's center x."""

    x: float
    y: float


class DominoImprover:
    """Sliding-window optimal assignment detailed placement."""

    def __init__(
        self,
        region: PlacementRegion,
        window: int = 6,
        max_passes: int = 2,
        obstacles: Sequence = (),
    ):
        if window < 2:
            raise ValueError("window must be at least 2")
        self.region = region
        self.window = window
        self.max_passes = max_passes
        self.obstacles = list(obstacles)

    # ------------------------------------------------------------------
    def improve(self, placement: Placement) -> ImprovementResult:
        from ..evaluation.wirelength import net_hpwl

        out = placement.copy()
        hpwl_before = float(net_hpwl(out).sum())
        accepted = 0
        passes_run = 0
        for _ in range(self.max_passes):
            passes_run += 1
            pass_accepted = 0
            rows = self._rows_of(out)
            self._current_rows = rows
            row_ys = sorted(rows)
            for ri in range(len(row_ys)):
                group_rows = row_ys[ri : ri + 2]  # this row + the next
                cells = [c for y in group_rows for c in rows[y]]
                cells.sort(key=lambda i: out.x[i])
                for start in range(0, max(1, len(cells) - 1), self.window // 2):
                    window_cells = cells[start : start + self.window]
                    if len(window_cells) >= 2:
                        pass_accepted += self._optimize_window(out, window_cells)
            accepted += pass_accepted
            if pass_accepted == 0:
                break
        hpwl_after = float(net_hpwl(out).sum())
        return ImprovementResult(
            placement=out,
            passes=passes_run,
            moves_accepted=accepted,
            hpwl_before_um=hpwl_before,
            hpwl_after_um=hpwl_after,
        )

    # ------------------------------------------------------------------
    def _rows_of(self, placement: Placement) -> Dict[float, List[int]]:
        nl = placement.netlist
        rows: Dict[float, List[int]] = {}
        for i in nl.movable_indices:
            if nl.cells[i].kind is CellKind.BLOCK:
                continue
            rows.setdefault(round(float(placement.y[i]), 6), []).append(int(i))
        for lst in rows.values():
            lst.sort(key=lambda i: placement.x[i])
        return rows

    def _optimize_window(self, placement: Placement, cells: List[int]) -> int:
        """Assign the window's cells to its slots; 1 if an improvement stuck."""
        nl = placement.netlist
        slots = [
            _Slot(float(placement.x[i]), float(placement.y[i])) for i in cells
        ]
        n = len(cells)
        cost = np.zeros((n, n))
        for a, cell in enumerate(cells):
            for s, slot in enumerate(slots):
                cost[a, s] = self._cell_cost(placement, cell, slot, set(cells))
        row_ind, col_ind = linear_sum_assignment(cost)
        if all(int(r) == int(c) for r, c in zip(row_ind, col_ind)):
            return 0  # identity assignment: nothing to do

        nets = self._affected_nets(placement, cells)
        before = self._nets_hpwl(placement, nets)
        old = [(placement.x[i], placement.y[i]) for i in cells]
        old_keys = {round(float(y), 6) for _x, y in old}
        for a, s in zip(row_ind, col_ind):
            placement.x[cells[a]] = slots[s].x
            placement.y[cells[a]] = slots[s].y
        self._repack_rows(placement, cells)
        after = self._nets_hpwl(placement, nets)
        legal = self._window_legal(placement, cells)
        if legal and after < before - 1e-9:
            self._refresh_rows(placement, cells, old_keys)
            return 1
        for i, (x, y) in zip(cells, old):
            placement.x[i] = x
            placement.y[i] = y
        return 0

    def _refresh_rows(
        self, placement: Placement, cells: List[int], old_keys: Set[float]
    ) -> None:
        """Keep the cached row membership in sync after an accepted window."""
        rows = getattr(self, "_current_rows", None)
        if rows is None:
            return
        new_keys = {round(float(placement.y[i]), 6) for i in cells}
        window = set(cells)
        for key in old_keys | new_keys:
            kept = [c for c in rows.get(key, []) if c not in window]
            kept.extend(
                i for i in cells if round(float(placement.y[i]), 6) == key
            )
            rows[key] = kept

    def _cell_cost(
        self, placement: Placement, cell: int, slot: _Slot, moving: Set[int]
    ) -> float:
        """HPWL contribution of *cell* at *slot*, other window cells ignored.

        Bounding boxes are computed over the net's non-window pins plus this
        cell at the slot — the standard independent-cost approximation of
        the transportation formulation.
        """
        nl = placement.netlist
        total = 0.0
        for j in nl.nets_of_cell(cell):
            xs: List[float] = []
            ys: List[float] = []
            for pin in nl.nets[j].pins:
                if pin.cell == cell:
                    xs.append(slot.x + pin.dx)
                    ys.append(slot.y + pin.dy)
                elif pin.cell not in moving:
                    xs.append(float(placement.x[pin.cell]) + pin.dx)
                    ys.append(float(placement.y[pin.cell]) + pin.dy)
            if len(xs) >= 2:
                total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def _repack_rows(self, placement: Placement, cells: List[int]) -> None:
        """Re-space each affected row's window cells to remove overlap.

        Cells keep their assigned order; within each row the group is packed
        from its original left edge.
        """
        nl = placement.netlist
        by_row: Dict[float, List[int]] = {}
        for i in cells:
            by_row.setdefault(round(float(placement.y[i]), 6), []).append(i)
        for row_cells in by_row.values():
            row_cells.sort(key=lambda i: placement.x[i])
            left = min(
                placement.x[i] - nl.widths[i] / 2.0 for i in row_cells
            )
            cursor = left
            for i in row_cells:
                placement.x[i] = cursor + nl.widths[i] / 2.0
                cursor += nl.widths[i]

    def _window_legal(self, placement: Placement, cells: List[int]) -> bool:
        """No overlap with anything and inside the region/obstacle-free."""
        nl = placement.netlist
        b = self.region.bounds
        rects = {i: placement.rect_of(i) for i in cells}
        for i, r in rects.items():
            if not b.contains_rect(r.expanded(-1e-9)):
                return False
            for obs in self.obstacles:
                if r.overlaps(obs):
                    return False
        # Against each other and against same-row neighbors outside the set.
        # Cells in different rows cannot overlap (row-height cells at row
        # centers), so only the rows the window touches need checking.
        cell_set = set(cells)
        items = list(rects.items())
        for a in range(len(items)):
            for c in range(a + 1, len(items)):
                if items[a][1].overlaps(items[c][1]):
                    return False
        rows = getattr(self, "_current_rows", None) or self._rows_of(placement)
        for i, r in rects.items():
            key = round(float(placement.y[i]), 6)
            for k in rows.get(key, ()):
                if k in cell_set:
                    continue
                if r.overlaps(placement.rect_of(k)):
                    return False
        return True

    # shared helpers (same contract as DetailedImprover)
    def _affected_nets(self, placement: Placement, cells: Sequence[int]) -> List[int]:
        nets: Set[int] = set()
        for i in cells:
            nets.update(placement.netlist.nets_of_cell(i))
        return sorted(nets)

    def _nets_hpwl(self, placement: Placement, nets: Sequence[int]) -> float:
        total = 0.0
        for j in nets:
            px, py = placement.pin_positions(j)
            total += (px.max() - px.min()) + (py.max() - py.min())
        return total
