"""Detailed placement improvement on a legal row placement.

Greedy, legality-preserving local moves in the spirit of the Domino final
placer [17] (which used network-flow subproblems; we use exact-delta greedy
swaps, which serve the same role in the flow at a fraction of the code):

* adjacent-pair swaps within a row (repacked in place, always legal);
* cross-row swaps between x-aligned cells of nearby rows, accepted only
  when both cells fit into each other's free span;
* optimal sliding: each cell moves to the median of its nets' other-pin
  intervals (the 1-D HPWL optimum), clamped into its free span.

Every move is evaluated by the exact HPWL delta of the affected nets and
accepted only if it improves, so the pass monotonically decreases HPWL.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..evaluation.wirelength import net_hpwl, pin_arrays
from ..geometry import PlacementRegion
from ..netlist import CellKind, Placement


@dataclass
class ImprovementResult:
    placement: Placement
    passes: int
    moves_accepted: int
    hpwl_before_um: float
    hpwl_after_um: float

    @property
    def improvement_percent(self) -> float:
        if self.hpwl_before_um == 0:
            return 0.0
        return 100.0 * (self.hpwl_before_um - self.hpwl_after_um) / self.hpwl_before_um


class DetailedImprover:
    """Greedy swap-based detailed placement."""

    def __init__(self, region: PlacementRegion, max_passes: int = 3, obstacles=()):
        self.region = region
        self.max_passes = max_passes
        self.obstacles = list(obstacles)

    def _clear_of_obstacles(self, placement: Placement, cell: int) -> bool:
        if not self.obstacles:
            return True
        r = placement.rect_of(cell)
        return not any(r.overlaps(obs) for obs in self.obstacles)

    # ------------------------------------------------------------------
    def improve(self, placement: Placement) -> ImprovementResult:
        nl = placement.netlist
        out = placement.copy()
        arrays = pin_arrays(nl)
        hpwl_before = float(net_hpwl(out).sum())
        accepted = 0
        passes_run = 0
        for _ in range(self.max_passes):
            passes_run += 1
            pass_accepted = 0
            rows = self._rows_of(out)
            pass_accepted += self._adjacent_swaps(out, rows)
            pass_accepted += self._cross_row_swaps(out, rows)
            pass_accepted += self._slide_to_median(out, rows)
            accepted += pass_accepted
            if pass_accepted == 0:
                break
        hpwl_after = float(net_hpwl(out).sum())
        return ImprovementResult(
            placement=out,
            passes=passes_run,
            moves_accepted=accepted,
            hpwl_before_um=hpwl_before,
            hpwl_after_um=hpwl_after,
        )

    # ------------------------------------------------------------------
    # Row structure
    # ------------------------------------------------------------------
    def _rows_of(self, placement: Placement) -> Dict[float, List[int]]:
        """Movable standard cells grouped by row y, sorted by x."""
        nl = placement.netlist
        rows: Dict[float, List[int]] = {}
        for i in nl.movable_indices:
            if nl.cells[i].kind is CellKind.BLOCK:
                continue
            rows.setdefault(round(float(placement.y[i]), 6), []).append(int(i))
        for cells in rows.values():
            cells.sort(key=lambda i: placement.x[i])
        return rows

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def _nets_hpwl(self, placement: Placement, nets: Sequence[int]) -> float:
        total = 0.0
        for j in nets:
            px, py = placement.pin_positions(j)
            total += (px.max() - px.min()) + (py.max() - py.min())
        return total

    def _affected_nets(self, placement: Placement, cells: Sequence[int]) -> List[int]:
        nets: Set[int] = set()
        for i in cells:
            nets.update(placement.netlist.nets_of_cell(i))
        return sorted(nets)

    def _adjacent_swaps(self, placement: Placement, rows: Dict[float, List[int]]) -> int:
        nl = placement.netlist
        accepted = 0
        for cells in rows.values():
            for k in range(len(cells) - 1):
                a, b = cells[k], cells[k + 1]
                nets = self._affected_nets(placement, (a, b))
                before = self._nets_hpwl(placement, nets)
                ax, bx = placement.x[a], placement.x[b]
                left_edge = ax - nl.widths[a] / 2.0
                # Repack: b first, then a, starting at the old left edge.
                new_bx = left_edge + nl.widths[b] / 2.0
                new_ax = left_edge + nl.widths[b] + nl.widths[a] / 2.0
                placement.x[a], placement.x[b] = new_ax, new_bx
                after = self._nets_hpwl(placement, nets)
                # Cells in the same row can sit in different segments (a
                # block between them); repacking must not cross into it.
                legal = self._clear_of_obstacles(
                    placement, a
                ) and self._clear_of_obstacles(placement, b)
                if legal and after < before - 1e-9:
                    accepted += 1
                    cells[k], cells[k + 1] = b, a
                else:
                    placement.x[a], placement.x[b] = ax, bx
        return accepted

    def _cross_row_swaps(self, placement: Placement, rows: Dict[float, List[int]]) -> int:
        nl = placement.netlist
        accepted = 0
        row_ys = sorted(rows)
        for ri in range(len(row_ys) - 1):
            upper = rows[row_ys[ri + 1]]
            lower = rows[row_ys[ri]]
            if not upper or not lower:
                continue
            upper_x = [placement.x[i] for i in upper]
            for pos_a, a in enumerate(lower):
                k = bisect.bisect_left(upper_x, placement.x[a])
                for pos_b in (k - 1, k):
                    if not 0 <= pos_b < len(upper):
                        continue
                    b = upper[pos_b]
                    if not self._fits_in_slot(placement, nl, lower, pos_a, b):
                        continue
                    if not self._fits_in_slot(placement, nl, upper, pos_b, a):
                        continue
                    nets = self._affected_nets(placement, (a, b))
                    before = self._nets_hpwl(placement, nets)
                    ax, ay = placement.x[a], placement.y[a]
                    bx, by = placement.x[b], placement.y[b]
                    placement.x[a], placement.y[a] = bx, by
                    placement.x[b], placement.y[b] = ax, ay
                    after = self._nets_hpwl(placement, nets)
                    legal = self._clear_of_obstacles(
                        placement, a
                    ) and self._clear_of_obstacles(placement, b)
                    if legal and after < before - 1e-9:
                        accepted += 1
                        lower[pos_a], upper[pos_b] = b, a
                        upper_x[pos_b] = placement.x[b]
                        break
                    placement.x[a], placement.y[a] = ax, ay
                    placement.x[b], placement.y[b] = bx, by
        return accepted

    def _slide_to_median(
        self, placement: Placement, rows: Dict[float, List[int]]
    ) -> int:
        """Slide each cell to its 1-D optimal x within its free span.

        With neighbors fixed, the HPWL-optimal x for a cell is any median of
        the interval endpoints contributed by its nets' other pins; we take
        the midpoint of the optimal interval, clamp it into the free span,
        and accept on exact improvement.
        """
        nl = placement.netlist
        accepted = 0
        for cells in rows.values():
            for pos, i in enumerate(cells):
                endpoints: List[float] = []
                for j in nl.nets_of_cell(i):
                    xs = [
                        placement.x[p.cell] + p.dx
                        for p in nl.nets[j].pins
                        if p.cell != i
                    ]
                    if xs:
                        endpoints.append(min(xs))
                        endpoints.append(max(xs))
                if not endpoints:
                    continue
                endpoints.sort()
                mid = len(endpoints) // 2
                if len(endpoints) % 2 == 0:
                    target = 0.5 * (endpoints[mid - 1] + endpoints[mid])
                else:
                    target = endpoints[mid]
                left = (
                    placement.x[cells[pos - 1]] + nl.widths[cells[pos - 1]] / 2.0
                    if pos > 0
                    else self.region.bounds.xlo
                )
                right = (
                    placement.x[cells[pos + 1]] - nl.widths[cells[pos + 1]] / 2.0
                    if pos + 1 < len(cells)
                    else self.region.bounds.xhi
                )
                half = nl.widths[i] / 2.0
                new_x = min(max(target, left + half), right - half)
                if abs(new_x - placement.x[i]) < 1e-9:
                    continue
                nets = self._affected_nets(placement, (i,))
                before = self._nets_hpwl(placement, nets)
                old_x = placement.x[i]
                placement.x[i] = new_x
                legal = self._clear_of_obstacles(placement, i)
                after = self._nets_hpwl(placement, nets)
                if legal and after < before - 1e-9:
                    accepted += 1
                else:
                    placement.x[i] = old_x
        return accepted

    def _fits_in_slot(
        self,
        placement: Placement,
        nl,
        row_cells: List[int],
        pos: int,
        candidate: int,
    ) -> bool:
        """Does *candidate* fit into the free span around ``row_cells[pos]``?"""
        occupant = row_cells[pos]
        left = (
            placement.x[row_cells[pos - 1]] + nl.widths[row_cells[pos - 1]] / 2.0
            if pos > 0
            else self.region.bounds.xlo
        )
        right = (
            placement.x[row_cells[pos + 1]] - nl.widths[row_cells[pos + 1]] / 2.0
            if pos + 1 < len(row_cells)
            else self.region.bounds.xhi
        )
        span = right - left
        if nl.widths[candidate] > span + 1e-9:
            return False
        # The swap keeps the occupant's center; the candidate must not poke
        # out of the span at that center.
        cx = placement.x[occupant]
        half = nl.widths[candidate] / 2.0
        return cx - half >= left - 1e-9 and cx + half <= right + 1e-9
