"""Vectorized Abacus legalization engine.

Same algorithm as the scalar :class:`~repro.legalize.abacus.AbacusLegalizer`
— left-to-right sweep, candidate rows by vertical distance, cluster
collapsing per segment — re-built on flat array state so it scales to
100k+-cell netlists:

- **Spatial row index**: candidate rows come from a two-pointer expansion
  around the cell's y (nearest row first, ties to the lower row), instead
  of an ``argsort`` over every segment per cell.  The expansion stops as
  soon as the monotonically growing y-cost alone exceeds the best known
  total cost — an exact prune, since cost >= y-cost.
- **Incremental trial costs**: a trial append simulates the cluster
  collapse backwards from the segment tail in O(#merges) instead of
  copying the whole cluster list.
- **Flat cluster state**: each segment keeps parallel float lists
  ``(x, e, q, w)`` plus each cluster's start into its placed-cell list;
  final positions are reconstructed in one vectorized pass per segment.

The sweep itself (cells sorted by desired left edge) and every tie-breaking
rule match the scalar implementation bit for bit; the cross-check suite
(``tests/test_legalize_vector.py``) pins vectorized-vs-scalar positions on
randomized instances.  The scalar Abacus stays in the tree as the
correctness oracle.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

import numpy as np

from ..geometry import PlacementRegion, Rect
from ..netlist import CellKind, Placement
from .abacus import LegalizationResult
from .segments import Segment, build_segments

_INF = float("inf")


class RowIndex:
    """Segments grouped by row, bottom-up, for nearest-row search."""

    def __init__(self, segments: Sequence[Segment]):
        # build_segments emits rows bottom-up and segments left-to-right,
        # so grouping by center_y preserves both orders.
        self.segments = list(segments)
        ys: List[float] = []
        groups: List[List[int]] = []
        for si, seg in enumerate(self.segments):
            if not ys or seg.center_y != ys[-1]:
                ys.append(seg.center_y)
                groups.append([])
            groups[-1].append(si)
        self.row_y = np.array(ys)
        self.row_segments = groups

    def rows_by_distance(self, y: float):
        """Row indices in increasing |row_y - y|, ties to the lower row."""
        ys = self.row_y
        n = len(ys)
        hi = int(np.searchsorted(ys, y))
        lo = hi - 1
        while lo >= 0 or hi < n:
            if lo < 0:
                yield hi
                hi += 1
            elif hi >= n:
                yield lo
                lo -= 1
            elif y - ys[lo] <= ys[hi] - y:
                yield lo
                lo -= 1
            else:
                yield hi
                hi += 1


class _SegState:
    """Flat cluster state of one segment (lists, not dataclasses)."""

    __slots__ = ("xlo", "xhi", "center_y", "width", "used", "cx", "ce", "cq",
                 "cw", "starts", "cells", "widths", "offsets")

    def __init__(self, segment: Segment):
        self.xlo = segment.xlo
        self.xhi = segment.xhi
        self.center_y = segment.center_y
        self.width = segment.width
        # Accumulated used width; free space is computed as one subtraction
        # (``width - used``) to match the scalar oracle's rounding exactly.
        self.used = 0.0
        # Parallel per-cluster arrays: left edge, weight, q-sum, width.
        self.cx: List[float] = []
        self.ce: List[float] = []
        self.cq: List[float] = []
        self.cw: List[float] = []
        # starts[i] = index into `cells` of cluster i's first cell.
        self.starts: List[int] = []
        # Placed cells in append order (clusters are contiguous runs),
        # with each cell's offset from its cluster's left edge.  Offsets
        # are updated at merge time with the scalar's exact arithmetic
        # (``prev.w + off``) so final coordinates stay bit-identical.
        self.cells: List[int] = []
        self.widths: List[float] = []
        self.offsets: List[float] = []

    def trial(self, width: float, weight: float, x_desired: float,
              y_cost: float) -> float:
        """Cost of appending, simulated backwards in O(#merges)."""
        if width > self.width - self.used + 1e-9:
            return _INF
        xlo, xhi = self.xlo, self.xhi
        e = weight
        q = weight * x_desired
        w = width
        x = q / e
        if x < xlo:
            x = xlo
        if x > xhi - w:
            x = xhi - w
        cx, ce, cq, cw = self.cx, self.ce, self.cq, self.cw
        k = len(cx) - 1
        while k >= 0 and cx[k] + cw[k] > x + 1e-12:
            q = cq[k] + q - e * cw[k]
            e += ce[k]
            w += cw[k]
            x = q / e
            if x < xlo:
                x = xlo
            if x > xhi - w:
                x = xhi - w
            k -= 1
        new_cell_x = x + w - width
        # ``** 2`` (not ``d * d``) to stay bit-identical with the scalar
        # oracle on near-tie cost comparisons.
        return weight * (new_cell_x - x_desired) ** 2 + y_cost

    def append(self, cell: int, width: float, weight: float,
               x_desired: float) -> None:
        """Abacus PlaceRow step: append the cell, collapse clusters."""
        xlo, xhi = self.xlo, self.xhi
        cx, ce, cq, cw = self.cx, self.ce, self.cq, self.cw
        offsets = self.offsets
        start = len(self.cells)
        self.cells.append(cell)
        self.widths.append(width)
        offsets.append(0.0)
        e = weight
        q = weight * x_desired
        w = width
        x = q / e
        if x < xlo:
            x = xlo
        if x > xhi - w:
            x = xhi - w
        while cx and cx[-1] + cw[-1] > x + 1e-12:
            pw = cw.pop()
            # The merging cluster's cells shift right by the previous
            # cluster's width — ``pw + off``, the scalar's exact order.
            for j in range(start, len(offsets)):
                offsets[j] = pw + offsets[j]
            # Scalar append uses ``prev.q += c.q - c.e * prev.w`` — i.e.
            # ``pq + (q - e*pw)`` — a *different* association from its own
            # trial path ``(pq + q) - e*pw``.  Match each path exactly.
            q = cq.pop() + (q - e * pw)
            e += ce.pop()
            w += pw
            cx.pop()
            start = self.starts.pop()
            x = q / e
            if x < xlo:
                x = xlo
            if x > xhi - w:
                x = xhi - w
        cx.append(x)
        ce.append(e)
        cq.append(q)
        cw.append(w)
        self.starts.append(start)
        self.used += width


class VectorAbacusLegalizer:
    """Row legalizer: scalar-Abacus semantics on flat array state."""

    def __init__(
        self,
        region: PlacementRegion,
        obstacles: Sequence[Rect] = (),
        row_search_radius: int = 6,
    ):
        self.region = region
        self.obstacles = list(obstacles)
        self.row_search_radius = row_search_radius
        self.segments = build_segments(region, self.obstacles)
        if not self.segments:
            raise ValueError("no free segments to legalize into")
        self.index = RowIndex(self.segments)

    def legalize(self, placement: Placement) -> LegalizationResult:
        nl = placement.netlist
        states = [_SegState(seg) for seg in self.segments]
        row_y = self.index.row_y
        row_segments = self.index.row_segments
        radius = self.row_search_radius

        movable = nl.movable_indices
        if movable.size:
            std_mask = np.array(
                [nl.cells[int(i)].kind is not CellKind.BLOCK for i in movable],
                dtype=bool,
            )
            std = movable[std_mask]
        else:
            std = movable
        widths = nl.widths[std]
        weights = nl.areas[std]
        x_desired = placement.x[std] - widths / 2.0
        y_desired = placement.y[std]
        order = np.argsort(x_desired, kind="stable")

        failed: List[int] = []
        # tolist() yields Python floats, so all sweep arithmetic below uses
        # CPython semantics — NumPy's scalar ``**`` rounds differently in
        # the last bit, which would break bit-identity with the scalar
        # oracle on near-tie row choices.
        ys = row_y.tolist()
        nrows = len(ys)
        for i, width, weight, xd, yd in zip(
            std[order].tolist(),
            widths[order].tolist(),
            weights[order].tolist(),
            x_desired[order].tolist(),
            y_desired[order].tolist(),
        ):
            best_cost = _INF
            best: Optional[int] = None
            rows_tried = 0
            # Inlined two-pointer nearest-row expansion (ties to the lower
            # row) — a generator here costs more than the whole trial.
            hi = bisect_left(ys, yd)
            lo = hi - 1
            while lo >= 0 or hi < nrows:
                if lo < 0:
                    r = hi
                    hi += 1
                elif hi >= nrows:
                    r = lo
                    lo -= 1
                elif yd - ys[lo] <= ys[hi] - yd:
                    r = lo
                    lo -= 1
                else:
                    r = hi
                    hi += 1
                rows_tried += 1
                if rows_tried > radius and best is not None:
                    break
                y_cost = weight * (ys[r] - yd) ** 2
                if best is not None and y_cost >= best_cost:
                    # Rows only get farther from here on; cost >= y-cost.
                    break
                for si in row_segments[r]:
                    if best is not None and y_cost >= best_cost:
                        break
                    cost = states[si].trial(width, weight, xd, y_cost)
                    if cost < best_cost:
                        best_cost = cost
                        best = si
            if best is None:
                failed.append(i)
                continue
            states[best].append(i, width, weight, xd)

        out = placement.copy()
        for state in states:
            if not state.cells:
                continue
            cells = np.array(state.cells, dtype=np.int64)
            cell_w = np.array(state.widths)
            offs = np.array(state.offsets)
            starts = np.array(state.starts, dtype=np.int64)
            counts = np.diff(np.concatenate((starts, [len(state.cells)])))
            cluster_x = np.repeat(np.array(state.cx), counts)
            # (c.x + off) + w/2 — the scalar's exact evaluation order.
            out.x[cells] = (cluster_x + offs) + cell_w / 2.0
            out.y[cells] = state.center_y
        out.reset_fixed()
        moved = out.displacement_from(placement)
        return LegalizationResult(
            placement=out,
            mean_displacement=float(moved[movable].mean()) if movable.size else 0.0,
            max_displacement=float(moved[movable].max()) if movable.size else 0.0,
            failed_cells=failed,
        )
