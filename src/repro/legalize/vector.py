"""Vectorized Abacus legalization engine.

Same algorithm as the scalar :class:`~repro.legalize.abacus.AbacusLegalizer`
— left-to-right sweep, candidate rows by vertical distance, cluster
collapsing per segment — re-built on flat array state so it scales to
100k+-cell netlists:

- **Spatial row index**: candidate rows come from a two-pointer expansion
  around the cell's y (nearest row first, ties to the lower row), instead
  of an ``argsort`` over every segment per cell.  The expansion stops as
  soon as the monotonically growing y-cost alone exceeds the best known
  total cost — an exact prune, since cost >= y-cost.
- **Incremental trial costs**: a trial append simulates the cluster
  collapse backwards from the segment tail in O(#merges) instead of
  copying the whole cluster list.
- **Flat cluster state**: each segment keeps parallel float lists
  ``(x, e, q, w)`` plus each cluster's start into its placed-cell list;
  final positions are reconstructed in one vectorized pass per segment.
- **Banded parallelism**: with ``bands > 1`` the row index is split into
  contiguous horizontal bands, each cell is pre-assigned to the band of
  its nearest row, and the bands sweep independently (optionally on a
  thread pool).  A band simulates the *global* nearest-row expansion but
  trials only in-band rows; the moment it visits an out-of-band row where
  the serial sweep would not already have stopped (neither the radius
  break nor the exact y-cost prune fires) the cell *escapes* — the band
  is merged with its neighbor in the escape direction and re-run.  In a
  partition with no escapes every cell provably sees exactly the serial
  trial sequence, so the merged result is bit-identical to the serial
  sweep at any band/thread count; in the worst case merging degenerates
  to one band, which *is* the serial sweep.

The sweep itself (cells sorted by desired left edge) and every tie-breaking
rule match the scalar implementation bit for bit; the cross-check suite
(``tests/test_legalize_vector.py``) pins vectorized-vs-scalar positions on
randomized instances, and ``tests/test_legalize_banded.py`` pins
banded-vs-serial equality.  The scalar Abacus stays in the tree as the
correctness oracle.
"""

from __future__ import annotations

from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import PlacementRegion, Rect
from ..netlist import CellKind, Placement
from .abacus import LegalizationResult
from .segments import Segment, build_segments

_INF = float("inf")

#: Below this many standard cells a banded request falls back to serial —
#: band bookkeeping costs more than it saves on small instances.
SERIAL_FALLBACK_CELLS = 20_000

#: Auto band sizing (``bands=0``): one band per this many cells.
_CELLS_PER_BAND = 50_000

#: Keep at least this many rows per band so the escape rate stays low
#: (cells stop within ``row_search_radius`` rows of their target).
_MIN_ROWS_PER_BAND = 8


class RowIndex:
    """Segments grouped by row, bottom-up, for nearest-row search."""

    def __init__(self, segments: Sequence[Segment]):
        # build_segments emits rows bottom-up and segments left-to-right,
        # so grouping by center_y preserves both orders.
        self.segments = list(segments)
        ys: List[float] = []
        groups: List[List[int]] = []
        for si, seg in enumerate(self.segments):
            if not ys or seg.center_y != ys[-1]:
                ys.append(seg.center_y)
                groups.append([])
            groups[-1].append(si)
        self.row_y = np.array(ys)
        self.row_segments = groups

    def rows_by_distance(self, y: float):
        """Row indices in increasing |row_y - y|, ties to the lower row."""
        ys = self.row_y
        n = len(ys)
        hi = int(np.searchsorted(ys, y))
        lo = hi - 1
        while lo >= 0 or hi < n:
            if lo < 0:
                yield hi
                hi += 1
            elif hi >= n:
                yield lo
                lo -= 1
            elif y - ys[lo] <= ys[hi] - y:
                yield lo
                lo -= 1
            else:
                yield hi
                hi += 1


class _SegState:
    """Flat cluster state of one segment (lists, not dataclasses)."""

    __slots__ = ("xlo", "xhi", "center_y", "width", "used", "cx", "ce", "cq",
                 "cw", "starts", "cells", "widths", "offsets")

    def __init__(self, segment: Segment):
        self.xlo = segment.xlo
        self.xhi = segment.xhi
        self.center_y = segment.center_y
        self.width = segment.width
        # Accumulated used width; free space is computed as one subtraction
        # (``width - used``) to match the scalar oracle's rounding exactly.
        self.used = 0.0
        # Parallel per-cluster arrays: left edge, weight, q-sum, width.
        self.cx: List[float] = []
        self.ce: List[float] = []
        self.cq: List[float] = []
        self.cw: List[float] = []
        # starts[i] = index into `cells` of cluster i's first cell.
        self.starts: List[int] = []
        # Placed cells in append order (clusters are contiguous runs),
        # with each cell's offset from its cluster's left edge.  Offsets
        # are updated at merge time with the scalar's exact arithmetic
        # (``prev.w + off``) so final coordinates stay bit-identical.
        self.cells: List[int] = []
        self.widths: List[float] = []
        self.offsets: List[float] = []

    def trial(self, width: float, weight: float, x_desired: float,
              y_cost: float) -> float:
        """Cost of appending, simulated backwards in O(#merges)."""
        if width > self.width - self.used + 1e-9:
            return _INF
        xlo, xhi = self.xlo, self.xhi
        e = weight
        q = weight * x_desired
        w = width
        x = q / e
        if x < xlo:
            x = xlo
        if x > xhi - w:
            x = xhi - w
        cx, ce, cq, cw = self.cx, self.ce, self.cq, self.cw
        k = len(cx) - 1
        while k >= 0 and cx[k] + cw[k] > x + 1e-12:
            q = cq[k] + q - e * cw[k]
            e += ce[k]
            w += cw[k]
            x = q / e
            if x < xlo:
                x = xlo
            if x > xhi - w:
                x = xhi - w
            k -= 1
        new_cell_x = x + w - width
        # ``** 2`` (not ``d * d``) to stay bit-identical with the scalar
        # oracle on near-tie cost comparisons.
        return weight * (new_cell_x - x_desired) ** 2 + y_cost

    def append(self, cell: int, width: float, weight: float,
               x_desired: float) -> None:
        """Abacus PlaceRow step: append the cell, collapse clusters."""
        xlo, xhi = self.xlo, self.xhi
        cx, ce, cq, cw = self.cx, self.ce, self.cq, self.cw
        offsets = self.offsets
        start = len(self.cells)
        self.cells.append(cell)
        self.widths.append(width)
        offsets.append(0.0)
        e = weight
        q = weight * x_desired
        w = width
        x = q / e
        if x < xlo:
            x = xlo
        if x > xhi - w:
            x = xhi - w
        while cx and cx[-1] + cw[-1] > x + 1e-12:
            pw = cw.pop()
            # The merging cluster's cells shift right by the previous
            # cluster's width — ``pw + off``, the scalar's exact order.
            for j in range(start, len(offsets)):
                offsets[j] = pw + offsets[j]
            # Scalar append uses ``prev.q += c.q - c.e * prev.w`` — i.e.
            # ``pq + (q - e*pw)`` — a *different* association from its own
            # trial path ``(pq + q) - e*pw``.  Match each path exactly.
            q = cq.pop() + (q - e * pw)
            e += ce.pop()
            w += pw
            cx.pop()
            start = self.starts.pop()
            x = q / e
            if x < xlo:
                x = xlo
            if x > xhi - w:
                x = xhi - w
        cx.append(x)
        ce.append(e)
        cq.append(q)
        cw.append(w)
        self.starts.append(start)
        self.used += width


def _sweep_band(
    states: List[Optional[_SegState]],
    ys: List[float],
    row_segments: List[List[int]],
    radius: int,
    idxs: List[int],
    widths: List[float],
    weights: List[float],
    xds: List[float],
    yds: List[float],
    row_lo: int,
    row_hi: int,
) -> Tuple[List[int], int]:
    """Sweep one band's cells (global x order) over rows [row_lo, row_hi).

    Simulates the *global* two-pointer nearest-row expansion — out-of-band
    rows are counted and checked against the serial break conditions, but
    never trialed.  Returns ``(failed, escape)`` where ``escape`` is 0 for
    a clean run, -1/+1 when a cell reached a row below/above the band at a
    point where the serial sweep would have kept going (its result could
    depend on out-of-band state; the caller merges bands and re-runs).
    With ``row_lo == 0 and row_hi == len(ys)`` this *is* the serial sweep
    and can never escape.
    """
    nrows = len(ys)
    failed: List[int] = []
    for i, width, weight, xd, yd in zip(idxs, widths, weights, xds, yds):
        best_cost = _INF
        best: Optional[int] = None
        rows_tried = 0
        # Inlined two-pointer nearest-row expansion (ties to the lower
        # row) — a generator here costs more than the whole trial.
        hi = bisect_left(ys, yd)
        lo = hi - 1
        while lo >= 0 or hi < nrows:
            if lo < 0:
                r = hi
                hi += 1
            elif hi >= nrows:
                r = lo
                lo -= 1
            elif yd - ys[lo] <= ys[hi] - yd:
                r = lo
                lo -= 1
            else:
                r = hi
                hi += 1
            rows_tried += 1
            if rows_tried > radius and best is not None:
                break
            y_cost = weight * (ys[r] - yd) ** 2
            if best is not None and y_cost >= best_cost:
                # Rows only get farther from here on; cost >= y-cost.
                break
            if r < row_lo:
                return failed, -1
            if r >= row_hi:
                return failed, 1
            for si in row_segments[r]:
                if best is not None and y_cost >= best_cost:
                    break
                cost = states[si].trial(width, weight, xd, y_cost)
                if cost < best_cost:
                    best_cost = cost
                    best = si
        if best is None:
            failed.append(i)
            continue
        states[best].append(i, width, weight, xd)
    return failed, 0


class VectorAbacusLegalizer:
    """Row legalizer: scalar-Abacus semantics on flat array state.

    ``bands``: 1 = serial sweep, N > 1 = banded-parallel sweep over N row
    bands (bit-identical output), 0 = auto (one band per ~50k cells, serial
    below 20k).  ``threads`` > 1 runs bands on a thread pool; the result
    never depends on the thread count.
    """

    def __init__(
        self,
        region: PlacementRegion,
        obstacles: Sequence[Rect] = (),
        row_search_radius: int = 6,
        bands: int = 0,
        threads: int = 1,
    ):
        self.region = region
        self.obstacles = list(obstacles)
        self.row_search_radius = row_search_radius
        self.bands = bands
        self.threads = max(1, threads)
        self.segments = build_segments(region, self.obstacles)
        if not self.segments:
            raise ValueError("no free segments to legalize into")
        self.index = RowIndex(self.segments)

    def _effective_bands(self, n_cells: int, nrows: int) -> int:
        if self.bands == 1:
            return 1
        if self.bands <= 0:
            if n_cells < SERIAL_FALLBACK_CELLS:
                return 1
            requested = n_cells // _CELLS_PER_BAND
        else:
            requested = self.bands
        return max(1, min(requested, nrows // _MIN_ROWS_PER_BAND))

    def legalize(self, placement: Placement) -> LegalizationResult:
        nl = placement.netlist
        row_segments = self.index.row_segments
        radius = self.row_search_radius

        movable = nl.movable_indices
        if movable.size:
            std_mask = np.array(
                [nl.cells[int(i)].kind is not CellKind.BLOCK for i in movable],
                dtype=bool,
            )
            std = movable[std_mask]
        else:
            std = movable
        widths = nl.widths[std]
        weights = nl.areas[std]
        x_desired = placement.x[std] - widths / 2.0
        y_desired = placement.y[std]
        order = np.argsort(x_desired, kind="stable")

        # tolist() yields Python floats, so all sweep arithmetic below uses
        # CPython semantics — NumPy's scalar ``**`` rounds differently in
        # the last bit, which would break bit-identity with the scalar
        # oracle on near-tie row choices.
        ys = self.index.row_y.tolist()
        nrows = len(ys)
        cells = (
            std[order].tolist(),
            widths[order].tolist(),
            weights[order].tolist(),
            x_desired[order].tolist(),
            y_desired[order].tolist(),
        )

        nbands = self._effective_bands(len(cells[0]), nrows)
        if nbands <= 1:
            states = [_SegState(seg) for seg in self.segments]
            failed, _ = _sweep_band(
                states, ys, row_segments, radius, *cells, 0, nrows
            )
        else:
            states, failed = self._banded_sweep(
                cells, ys, row_segments, radius, y_desired[order], nbands
            )

        out = placement.copy()
        for state in states:
            if state is None or not state.cells:
                continue
            placed = np.array(state.cells, dtype=np.int64)
            cell_w = np.array(state.widths)
            offs = np.array(state.offsets)
            starts = np.array(state.starts, dtype=np.int64)
            counts = np.diff(np.concatenate((starts, [len(state.cells)])))
            cluster_x = np.repeat(np.array(state.cx), counts)
            # (c.x + off) + w/2 — the scalar's exact evaluation order.
            out.x[placed] = (cluster_x + offs) + cell_w / 2.0
            out.y[placed] = state.center_y
        out.reset_fixed()
        moved = out.displacement_from(placement)
        return LegalizationResult(
            placement=out,
            mean_displacement=float(moved[movable].mean()) if movable.size else 0.0,
            max_displacement=float(moved[movable].max()) if movable.size else 0.0,
            failed_cells=failed,
        )

    def _banded_sweep(
        self,
        cells: Tuple[list, list, list, list, list],
        ys: List[float],
        row_segments: List[List[int]],
        radius: int,
        yd_sorted: np.ndarray,
        nbands: int,
    ) -> Tuple[List[Optional[_SegState]], List[int]]:
        """Run the sweep over ``nbands`` row bands, merging on escape.

        Bands whose cells never provably-interact with out-of-band state
        keep their results; a band where any cell escapes is merged with
        its neighbor in the escape direction and re-run.  The band count
        strictly decreases on every merge round, so this terminates — in
        the worst case with one band, the serial sweep itself.
        """
        nrows = len(ys)
        ys_arr = self.index.row_y

        # Each cell's first-tried row (nearest, ties to the lower row) —
        # the band assignment key.  Matches the sweep's first expansion
        # step exactly.
        hi = np.searchsorted(ys_arr, yd_sorted, side="left")
        lo = hi - 1
        take_lo = (lo >= 0) & (
            (hi >= nrows) | ((yd_sorted - ys_arr[np.minimum(lo, nrows - 1)])
                             <= (ys_arr[np.minimum(hi, nrows - 1)] - yd_sorted))
        )
        r0 = np.where(take_lo, lo, np.minimum(hi, nrows - 1))

        # Initial partition: contiguous row ranges with ~equal rows.
        edges = np.linspace(0, nrows, nbands + 1).astype(int)
        bands: List[Tuple[int, int]] = [
            (int(edges[k]), int(edges[k + 1]))
            for k in range(nbands)
            if edges[k] < edges[k + 1]
        ]

        def run_band(band: Tuple[int, int]):
            row_lo, row_hi = band
            states: List[Optional[_SegState]] = [None] * len(self.segments)
            for r in range(row_lo, row_hi):
                for si in row_segments[r]:
                    states[si] = _SegState(self.segments[si])
            mask = (r0 >= row_lo) & (r0 < row_hi)
            sel = np.flatnonzero(mask)
            band_cells = [
                [col[j] for j in sel.tolist()] for col in cells
            ]
            failed, escape = _sweep_band(
                states, ys, row_segments, radius, *band_cells,
                row_lo, row_hi,
            )
            return band, states, failed, escape

        results = {}
        pending = list(bands)
        while pending:
            if self.threads > 1 and len(pending) > 1:
                with ThreadPoolExecutor(
                    max_workers=min(self.threads, len(pending))
                ) as pool:
                    outcomes = list(pool.map(run_band, pending))
            else:
                outcomes = [run_band(band) for band in pending]

            escapes = []
            for band, states, failed, escape in outcomes:
                if escape == 0:
                    results[band] = (states, failed)
                else:
                    escapes.append((band, escape))
            if not escapes:
                break

            # Merge every escaped band with its neighbor in the escape
            # direction (deterministic: escape sets do not depend on
            # thread scheduling), then re-run only the merged bands.
            bands.sort()
            merged_into = list(range(len(bands)))

            def root(k: int) -> int:
                while merged_into[k] != k:
                    k = merged_into[k]
                return k

            pos = {band: k for k, band in enumerate(bands)}
            for band, direction in escapes:
                k = pos[band]
                other = k + direction
                if 0 <= other < len(bands):
                    a, b = root(k), root(other)
                    if a != b:
                        merged_into[max(a, b)] = min(a, b)
            groups: dict = {}
            for k, band in enumerate(bands):
                groups.setdefault(root(k), []).append(band)
            new_bands: List[Tuple[int, int]] = []
            pending = []
            for members in groups.values():
                lo_r = min(b[0] for b in members)
                hi_r = max(b[1] for b in members)
                merged = (lo_r, hi_r)
                new_bands.append(merged)
                if len(members) > 1:
                    pending.append(merged)
                    for b in members:
                        results.pop(b, None)
            bands = sorted(new_bands)

        # Combine: bands own disjoint segment sets, so a plain overlay
        # merges them.  Failed cells can only occur in a full-range band
        # (any escape re-merges first), so concatenation order is moot.
        combined: List[Optional[_SegState]] = [None] * len(self.segments)
        failed_all: List[int] = []
        for band in bands:
            states, failed = results[band]
            for si, st in enumerate(states):
                if st is not None:
                    combined[si] = st
            failed_all.extend(failed)
        return combined, failed_all
