"""Fault injection for the placement pipeline.

The resilience layer (health guards, the CG recovery ladder, deadlines,
best-so-far tracking) is only trustworthy if every recovery path has been
*seen to fire*.  This module provides monkeypatch-style context managers
that corrupt the pipeline at well-defined hook sites — the force field
after it is computed, the CG result before the placer consumes it, the
wall clock at the top of a transformation — so tests can drive the
pipeline into exactly the failure they want to prove is handled.

The hooks live in :mod:`repro.core.health` and cost a single dict
truthiness check when nothing is installed; production behavior is
untouched.  All installers are context managers that restore the previous
hook on exit, even on error, so a failing test cannot leak faults into
the next one.

Example::

    from repro.testing import corrupt_field

    with corrupt_field(at_iteration=3):
        with pytest.raises(NumericalHealthError) as err:
            placer.place()
    assert err.value.iteration == 3 and err.value.phase == "field"
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core import health

#: Exit code used by process-killing chaos (`kill_worker`,
#: ``corrupt_checkpoint(mode="kill_mid_write")``) so a supervisor can tell
#: an injected death from a genuine crash in tests.
KILL_EXIT_CODE = 86

#: Environment variable carrying a JSON list of ``[name, kwargs]`` fault
#: specs, re-installed by worker initializers so injection survives
#: ``spawn``/``forkserver`` start methods (where the parent's in-memory
#: hook registry is not inherited).
FAULT_SPEC_ENV = "REPRO_FAULT_SPECS"


@contextmanager
def _install(site: str, hook) -> Iterator[None]:
    """Install *hook* at *site*, restoring the previous hook on exit."""
    previous = health._FAULT_HOOKS.get(site)
    health.install_fault_hook(site, hook)
    try:
        yield
    finally:
        if previous is None:
            health.remove_fault_hook(site)
        else:
            health.install_fault_hook(site, previous)


class FaultInjection:
    """Book-keeping shared by all injectors: how often the fault fired."""

    def __init__(self) -> None:
        self.fired = 0


def corrupt_field(
    at_iteration: int = 0,
    kind: str = "nan",
    target: str = "field",
) -> "_ContextWithStats":
    """Poison the computed force field / sampled forces.

    ``kind`` is ``"nan"`` or ``"inf"``; ``target`` selects what gets
    corrupted: ``"field"`` (the Poisson field grids), ``"force"`` (the
    per-cell sampled forces), or ``"density"`` (the density map).  The
    fault fires on the ``at_iteration``-th force computation (0-based),
    exactly what the health guard must attribute to that phase.
    """
    if kind not in ("nan", "inf"):
        raise ValueError(f"kind must be 'nan' or 'inf', got {kind!r}")
    if target not in ("field", "force", "density"):
        raise ValueError(
            f"target must be 'field', 'force' or 'density', got {target!r}"
        )
    poison = np.nan if kind == "nan" else np.inf
    stats = FaultInjection()
    calls = {"n": -1}

    def hook(forces) -> None:
        calls["n"] += 1
        if calls["n"] != at_iteration:
            return
        stats.fired += 1
        if target == "density":
            forces.density.density[0, 0] = poison
        elif target == "field":
            forces.field.fx[..., 0] = poison
        else:
            if forces.fx.size:
                forces.fx[0] = poison
            else:  # nothing to poison; corrupt the field instead
                forces.field.fx[..., 0] = poison

    return _ContextWithStats(_install("field", hook), stats)


def fail_cg(
    times: int = 1,
    mode: str = "stall",
    min_call: int = 0,
) -> "_ContextWithStats":
    """Make :func:`~repro.core.solver.conjugate_gradient` report failure.

    The hook intercepts the CG result *after* a genuine solve:

    - ``mode="stall"`` marks it non-converged (residual never met the
      target) while keeping the finite iterate — the recovery ladder
      should retry with a tighter tolerance / cold start and succeed;
    - ``mode="diverge"`` replaces the solution with non-finite garbage —
      the ladder must fall through to the direct solve.

    The first ``min_call`` CG calls pass untouched (so a run can get off
    the ground before the fault fires); the next ``times`` calls fail.
    The direct-solve rungs bypass CG entirely, so a run always completes
    once the ladder escalates past the CG rungs.
    """
    if mode not in ("stall", "diverge"):
        raise ValueError(f"mode must be 'stall' or 'diverge', got {mode!r}")
    stats = FaultInjection()
    calls = {"n": -1}

    def hook(result, A, b):
        calls["n"] += 1
        if calls["n"] < min_call or stats.fired >= times:
            return result
        stats.fired += 1
        if mode == "stall":
            return replace(result, converged=False)
        return replace(
            result, x=np.full_like(result.x, np.nan), converged=False,
            residual_norm=float("inf"),
        )

    return _ContextWithStats(_install("cg", hook), stats)


def burn_deadline(
    seconds: float = 0.05,
    from_iteration: int = 0,
    sleep=time.sleep,
) -> "_ContextWithStats":
    """Burn wall-clock at the top of each transformation.

    From ``from_iteration`` on, every transformation start sleeps for
    ``seconds``, so a configured ``deadline_seconds`` is guaranteed to
    trip mid-run and the best-so-far return path can be exercised without
    flaky timing assumptions.
    """
    stats = FaultInjection()

    def hook(iteration: int) -> None:
        if iteration >= from_iteration:
            stats.fired += 1
            sleep(seconds)

    return _ContextWithStats(_install("iteration", hook), stats)


class _ContextWithStats:
    """Context manager pairing an installer with its fire counter."""

    def __init__(self, ctx, stats: FaultInjection):
        self._ctx = ctx
        self.stats = stats

    def __enter__(self) -> FaultInjection:
        self._ctx.__enter__()
        return self.stats

    def __exit__(self, *exc) -> Optional[bool]:
        return self._ctx.__exit__(*exc)


# ----------------------------------------------------------------------
# Process-level chaos
# ----------------------------------------------------------------------
# The service layer (src/repro/service/) supervises worker *processes*;
# proving its recovery paths needs faults one level below the numerical
# ones above: abrupt worker death, hangs, torn checkpoint writes, slow
# cold starts.  All take an optional ``once_path``: when set, the fault
# fires only for the process that wins an exclusive create of that flag
# file — the cross-process "fire exactly once" primitive that keeps a
# respawned worker (which re-installs the same spec) from dying forever.

def _acquire_once(once_path) -> bool:
    """True if this caller may fire (exclusive-create of the flag file)."""
    if once_path is None:
        return True
    try:
        fd = os.open(str(once_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def kill_worker(
    at_iteration: int = 0, once_path: Optional[str] = None
) -> "_ContextWithStats":
    """Abruptly kill the process at the top of placement transformation
    ``at_iteration`` (``os._exit`` — no cleanup, no exception, exactly how
    the OOM killer or a segfault takes a worker down mid-job).
    """
    stats = FaultInjection()

    def hook(iteration: int) -> None:
        if iteration == at_iteration and _acquire_once(once_path):
            stats.fired += 1
            os._exit(KILL_EXIT_CODE)

    return _ContextWithStats(_install("iteration", hook), stats)


def hang_worker(
    at_iteration: int = 0,
    seconds: float = 3600.0,
    once_path: Optional[str] = None,
) -> "_ContextWithStats":
    """Hang the process at transformation ``at_iteration`` for *seconds*.

    The sleep is far longer than any reasonable job watchdog, so a
    supervisor must detect the stuck job by wall-clock and kill the
    worker; the hang never resolves by itself in test timescales.
    """
    stats = FaultInjection()

    def hook(iteration: int) -> None:
        if iteration == at_iteration and _acquire_once(once_path):
            stats.fired += 1
            time.sleep(seconds)

    return _ContextWithStats(_install("iteration", hook), stats)


def corrupt_checkpoint(
    mode: str = "kill_mid_write",
    nth_save: int = 1,
    once_path: Optional[str] = None,
) -> "_ContextWithStats":
    """Attack the checkpoint on its ``nth_save``-th write (1-based).

    - ``mode="kill_mid_write"`` kills the process between the tmp-file
      write and the atomic rename — the torn-write crash.  The snapshot
      on disk must still be the *previous* complete one.
    - ``mode="truncate"`` overwrites the committed snapshot with garbage
      after the rename — the bit-rot/partial-disk scenario.  A resuming
      job must fall back to a fresh start instead of failing.
    """
    if mode not in ("kill_mid_write", "truncate"):
        raise ValueError(
            f"mode must be 'kill_mid_write' or 'truncate', got {mode!r}"
        )
    stats = FaultInjection()
    saves = {"n": 0}

    def hook(stage: str, tmp: Path, path: Path) -> None:
        trigger = "pre_rename" if mode == "kill_mid_write" else "post_rename"
        if stage != trigger:
            return
        saves["n"] += 1
        if saves["n"] != nth_save or not _acquire_once(once_path):
            return
        stats.fired += 1
        if mode == "kill_mid_write":
            os._exit(KILL_EXIT_CODE)
        Path(path).write_bytes(b"torn checkpoint garbage")

    return _ContextWithStats(_install("checkpoint", hook), stats)


def slow_start(
    seconds: float = 0.5, once_path: Optional[str] = None
) -> "_ContextWithStats":
    """Delay a service worker's initializer by *seconds*.

    Fires at the ``worker_start`` hook site, before the worker reports
    ready — a supervisor with a start watchdog must either tolerate the
    delay or recycle the worker, but never dispatch into the void.
    """
    stats = FaultInjection()

    def hook(worker_id: int) -> None:
        if _acquire_once(once_path):
            stats.fired += 1
            time.sleep(seconds)

    return _ContextWithStats(_install("worker_start", hook), stats)


#: Name -> factory for every injectable fault.  This is the single
#: resolution table used by job specs (``PlacementJob.inject_faults``),
#: service worker initializers, and the :data:`FAULT_SPEC_ENV` mechanism.
FAULT_FACTORIES = {
    "corrupt_field": corrupt_field,
    "fail_cg": fail_cg,
    "burn_deadline": burn_deadline,
    "kill_worker": kill_worker,
    "hang_worker": hang_worker,
    "corrupt_checkpoint": corrupt_checkpoint,
    "slow_start": slow_start,
}

FaultSpec = Tuple[str, Dict]


def resolve_fault(site: str, **kwargs) -> "_ContextWithStats":
    """Instantiate the named fault, with an actionable unknown-name error."""
    try:
        factory = FAULT_FACTORIES[site]
    except KeyError:
        raise ValueError(
            f"unknown fault site {site!r}; choose from "
            f"{sorted(FAULT_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def encode_fault_specs(specs: List[FaultSpec]) -> str:
    """JSON-encode ``[(name, kwargs), ...]`` for :data:`FAULT_SPEC_ENV`."""
    for name, kwargs in specs:
        if name not in FAULT_FACTORIES:
            raise ValueError(
                f"unknown fault site {name!r}; choose from "
                f"{sorted(FAULT_FACTORIES)}"
            )
        json.dumps(kwargs)  # must be serializable
    return json.dumps([[name, dict(kwargs)] for name, kwargs in specs])


def env_fault_specs() -> List[FaultSpec]:
    """Decode :data:`FAULT_SPEC_ENV` from the environment (empty if unset)."""
    raw = os.environ.get(FAULT_SPEC_ENV, "").strip()
    if not raw:
        return []
    try:
        specs = json.loads(raw)
        return [(str(name), dict(kwargs)) for name, kwargs in specs]
    except (ValueError, TypeError) as exc:
        raise ValueError(
            f"malformed {FAULT_SPEC_ENV}: expected a JSON list of "
            f"[name, kwargs] pairs, got {raw!r}"
        ) from exc


#: Fault contexts entered for the lifetime of this process (worker-side
#: installs).  The installers are generator-based context managers, so
#: dropping the entered context lets refcounting GC close the generator —
#: which runs the cleanup and silently *uninstalls* the hook.  Holding
#: them here keeps worker-lifetime faults armed until the process dies.
_PROCESS_LIFETIME: List["_ContextWithStats"] = []


def install_process_faults(specs: List[FaultSpec]) -> int:
    """Enter *specs* for the remaining lifetime of this process.

    Used by worker mains for faults that must outlive any one job (e.g.
    pool-level chaos).  Returns the number installed; never uninstalled —
    the hooks die with the process.
    """
    for name, kwargs in specs:
        ctx = resolve_fault(name, **kwargs)
        ctx.__enter__()
        _PROCESS_LIFETIME.append(ctx)
    return len(specs)


def install_env_hooks() -> int:
    """Install every fault spec from :data:`FAULT_SPEC_ENV`, process-lifetime.

    Called from worker initializers (the batch engine's pool and the
    service worker main), so injection registered in the parent reaches
    workers under **every** start method — ``fork`` inherits the hook
    registry for free, but ``spawn``/``forkserver`` workers start from a
    clean interpreter and must re-install from the environment.  Returns
    the number of hooks installed.
    """
    return install_process_faults(env_fault_specs())


@contextmanager
def env_faults(specs: List[FaultSpec]) -> Iterator[None]:
    """Set :data:`FAULT_SPEC_ENV` for the duration of the block.

    Parent-side helper for tests: workers started inside the block (any
    start method) re-install *specs* via :func:`install_env_hooks`; the
    parent's own hook registry is left untouched.
    """
    previous = os.environ.get(FAULT_SPEC_ENV)
    os.environ[FAULT_SPEC_ENV] = encode_fault_specs(specs)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULT_SPEC_ENV, None)
        else:
            os.environ[FAULT_SPEC_ENV] = previous
