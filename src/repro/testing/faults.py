"""Fault injection for the placement pipeline.

The resilience layer (health guards, the CG recovery ladder, deadlines,
best-so-far tracking) is only trustworthy if every recovery path has been
*seen to fire*.  This module provides monkeypatch-style context managers
that corrupt the pipeline at well-defined hook sites — the force field
after it is computed, the CG result before the placer consumes it, the
wall clock at the top of a transformation — so tests can drive the
pipeline into exactly the failure they want to prove is handled.

The hooks live in :mod:`repro.core.health` and cost a single dict
truthiness check when nothing is installed; production behavior is
untouched.  All installers are context managers that restore the previous
hook on exit, even on error, so a failing test cannot leak faults into
the next one.

Example::

    from repro.testing import corrupt_field

    with corrupt_field(at_iteration=3):
        with pytest.raises(NumericalHealthError) as err:
            placer.place()
    assert err.value.iteration == 3 and err.value.phase == "field"
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Iterator, Optional

import numpy as np

from ..core import health


@contextmanager
def _install(site: str, hook) -> Iterator[None]:
    """Install *hook* at *site*, restoring the previous hook on exit."""
    previous = health._FAULT_HOOKS.get(site)
    health.install_fault_hook(site, hook)
    try:
        yield
    finally:
        if previous is None:
            health.remove_fault_hook(site)
        else:
            health.install_fault_hook(site, previous)


class FaultInjection:
    """Book-keeping shared by all injectors: how often the fault fired."""

    def __init__(self) -> None:
        self.fired = 0


def corrupt_field(
    at_iteration: int = 0,
    kind: str = "nan",
    target: str = "field",
) -> "_ContextWithStats":
    """Poison the computed force field / sampled forces.

    ``kind`` is ``"nan"`` or ``"inf"``; ``target`` selects what gets
    corrupted: ``"field"`` (the Poisson field grids), ``"force"`` (the
    per-cell sampled forces), or ``"density"`` (the density map).  The
    fault fires on the ``at_iteration``-th force computation (0-based),
    exactly what the health guard must attribute to that phase.
    """
    if kind not in ("nan", "inf"):
        raise ValueError(f"kind must be 'nan' or 'inf', got {kind!r}")
    if target not in ("field", "force", "density"):
        raise ValueError(
            f"target must be 'field', 'force' or 'density', got {target!r}"
        )
    poison = np.nan if kind == "nan" else np.inf
    stats = FaultInjection()
    calls = {"n": -1}

    def hook(forces) -> None:
        calls["n"] += 1
        if calls["n"] != at_iteration:
            return
        stats.fired += 1
        if target == "density":
            forces.density.density[0, 0] = poison
        elif target == "field":
            forces.field.fx[..., 0] = poison
        else:
            if forces.fx.size:
                forces.fx[0] = poison
            else:  # nothing to poison; corrupt the field instead
                forces.field.fx[..., 0] = poison

    return _ContextWithStats(_install("field", hook), stats)


def fail_cg(
    times: int = 1,
    mode: str = "stall",
    min_call: int = 0,
) -> "_ContextWithStats":
    """Make :func:`~repro.core.solver.conjugate_gradient` report failure.

    The hook intercepts the CG result *after* a genuine solve:

    - ``mode="stall"`` marks it non-converged (residual never met the
      target) while keeping the finite iterate — the recovery ladder
      should retry with a tighter tolerance / cold start and succeed;
    - ``mode="diverge"`` replaces the solution with non-finite garbage —
      the ladder must fall through to the direct solve.

    The first ``min_call`` CG calls pass untouched (so a run can get off
    the ground before the fault fires); the next ``times`` calls fail.
    The direct-solve rungs bypass CG entirely, so a run always completes
    once the ladder escalates past the CG rungs.
    """
    if mode not in ("stall", "diverge"):
        raise ValueError(f"mode must be 'stall' or 'diverge', got {mode!r}")
    stats = FaultInjection()
    calls = {"n": -1}

    def hook(result, A, b):
        calls["n"] += 1
        if calls["n"] < min_call or stats.fired >= times:
            return result
        stats.fired += 1
        if mode == "stall":
            return replace(result, converged=False)
        return replace(
            result, x=np.full_like(result.x, np.nan), converged=False,
            residual_norm=float("inf"),
        )

    return _ContextWithStats(_install("cg", hook), stats)


def burn_deadline(
    seconds: float = 0.05,
    from_iteration: int = 0,
    sleep=time.sleep,
) -> "_ContextWithStats":
    """Burn wall-clock at the top of each transformation.

    From ``from_iteration`` on, every transformation start sleeps for
    ``seconds``, so a configured ``deadline_seconds`` is guaranteed to
    trip mid-run and the best-so-far return path can be exercised without
    flaky timing assumptions.
    """
    stats = FaultInjection()

    def hook(iteration: int) -> None:
        if iteration >= from_iteration:
            stats.fired += 1
            sleep(seconds)

    return _ContextWithStats(_install("iteration", hook), stats)


class _ContextWithStats:
    """Context manager pairing an installer with its fire counter."""

    def __init__(self, ctx, stats: FaultInjection):
        self._ctx = ctx
        self.stats = stats

    def __enter__(self) -> FaultInjection:
        self._ctx.__enter__()
        return self.stats

    def __exit__(self, *exc) -> Optional[bool]:
        return self._ctx.__exit__(*exc)
