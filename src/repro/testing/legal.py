"""Shared legality oracle for every legalizer.

One vectorized :func:`assert_legal` that the unit suite, the randomized
property suite and the cross-check tests all call, so "legal" means exactly
one thing everywhere:

- **no overlaps** between movable standard cells (checked row by row on the
  sorted order — O(n log n), so the oracle scales to 100k-cell instances),
- **in region**: every movable cell rect inside the region bounds,
- **row alignment**: every movable standard cell's center y on a row
  center (the repo's rows carry no site grid, so x is continuous;
  ``site_width`` opts into an x-grid check for flows that snap to sites),
- **obstacles avoided** when given,
- **fixed cells untouched** relative to a reference placement.

Checks raise ``AssertionError`` with a message naming the first offending
cell, so property-suite failures are directly actionable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..geometry import PlacementRegion, Rect
from ..netlist import CellKind, Placement

#: Overlap / containment tolerance in um.  Improvement passes move cells by
#: exact arithmetic but repack edges via sums of widths, so adjacent cells
#: can interpenetrate by a few ULPs; anything past this is a real overlap.
TOL = 1e-6


def _movable_std(placement: Placement) -> np.ndarray:
    nl = placement.netlist
    movable = nl.movable_indices
    if not movable.size:
        return movable
    mask = np.array(
        [nl.cells[int(i)].kind is not CellKind.BLOCK for i in movable],
        dtype=bool,
    )
    return movable[mask]


def assert_legal(
    placement: Placement,
    region: PlacementRegion,
    obstacles: Sequence[Rect] = (),
    reference: Optional[Placement] = None,
    site_width: Optional[float] = None,
) -> None:
    """Assert that *placement* is a legal row placement.

    *reference* (usually the pre-legalization placement) enables the
    fixed-cells-untouched check.  *site_width* additionally requires every
    movable cell's left edge to sit on that x grid.
    """
    nl = placement.netlist
    std = _movable_std(placement)
    if np.any(~np.isfinite(placement.x)) or np.any(~np.isfinite(placement.y)):
        raise AssertionError("non-finite coordinates in placement")

    # Fixed cells untouched.
    if reference is not None:
        fixed = np.array(
            [c.index for c in nl.cells if c.fixed], dtype=np.int64
        )
        if fixed.size:
            dx = placement.x[fixed] - reference.x[fixed]
            dy = placement.y[fixed] - reference.y[fixed]
            bad = np.flatnonzero((dx != 0.0) | (dy != 0.0))
            if bad.size:
                i = int(fixed[bad[0]])
                raise AssertionError(
                    f"fixed cell {nl.cells[i].name} moved by "
                    f"({float(dx[bad[0]])}, {float(dy[bad[0]])})"
                )

    if not std.size:
        return

    x = placement.x[std]
    y = placement.y[std]
    w = nl.widths[std]
    h = nl.heights[std]

    # In region.
    b = region.bounds
    out = (
        (x - w / 2.0 < b.xlo - TOL)
        | (x + w / 2.0 > b.xhi + TOL)
        | (y - h / 2.0 < b.ylo - TOL)
        | (y + h / 2.0 > b.yhi + TOL)
    )
    bad = np.flatnonzero(out)
    if bad.size:
        i = int(std[bad[0]])
        raise AssertionError(
            f"cell {nl.cells[i].name} outside region: "
            f"({placement.x[i]}, {placement.y[i]})"
        )

    # Row alignment: each center y must be (almost exactly) a row center.
    row_ys = np.array(sorted({row.center_y for row in region.rows}))
    if not row_ys.size:
        raise AssertionError("region has no rows")
    nearest = row_ys[
        np.clip(np.searchsorted(row_ys, y), 0, len(row_ys) - 1)
    ]
    lower = row_ys[np.clip(np.searchsorted(row_ys, y) - 1, 0, len(row_ys) - 1)]
    off_row = np.minimum(np.abs(y - nearest), np.abs(y - lower)) > TOL
    bad = np.flatnonzero(off_row)
    if bad.size:
        i = int(std[bad[0]])
        raise AssertionError(
            f"cell {nl.cells[i].name} not on a row: y={placement.y[i]}"
        )

    if site_width is not None:
        left = x - w / 2.0
        frac = np.abs(
            left - np.round((left - b.xlo) / site_width) * site_width - b.xlo
        )
        bad = np.flatnonzero(frac > TOL)
        if bad.size:
            i = int(std[bad[0]])
            raise AssertionError(
                f"cell {nl.cells[i].name} off the site grid: "
                f"left edge {float(left[bad[0]])}"
            )

    # No overlaps within a row: sort by (row, left edge) and require each
    # cell's left edge at or beyond its predecessor's right edge.
    order = np.lexsort((x - w / 2.0, np.round(y, 6)))
    xs = (x - w / 2.0)[order]
    xe = (x + w / 2.0)[order]
    ys = np.round(y, 6)[order]
    same_row = ys[1:] == ys[:-1]
    overlap = same_row & (xs[1:] < xe[:-1] - TOL)
    bad = np.flatnonzero(overlap)
    if bad.size:
        a = int(std[order[bad[0]]])
        c = int(std[order[bad[0] + 1]])
        raise AssertionError(
            f"cells {nl.cells[a].name} and {nl.cells[c].name} overlap by "
            f"{float(xe[:-1][bad[0]] - xs[1:][bad[0]])} um in row "
            f"y={float(ys[bad[0]])}"
        )

    # Obstacles (and movable blocks treated as placed rects by callers).
    for obs in obstacles:
        hit = (
            (x - w / 2.0 < obs.xhi - TOL)
            & (x + w / 2.0 > obs.xlo + TOL)
            & (y - h / 2.0 < obs.yhi - TOL)
            & (y + h / 2.0 > obs.ylo + TOL)
        )
        bad = np.flatnonzero(hit)
        if bad.size:
            i = int(std[bad[0]])
            raise AssertionError(
                f"cell {nl.cells[i].name} overlaps obstacle {obs}"
            )


__all__ = ["assert_legal", "TOL"]
