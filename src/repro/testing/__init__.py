"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the fault-injection harness used by the
robustness suite to prove that every guardrail and recovery path in the
placement pipeline actually fires.  It is importable from production code
paths' point of view, but installs nothing unless explicitly asked to.
"""

from .faults import (
    FaultInjection,
    burn_deadline,
    corrupt_field,
    fail_cg,
)

__all__ = [
    "FaultInjection",
    "burn_deadline",
    "corrupt_field",
    "fail_cg",
]
