"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the fault-injection harness used by the
robustness suite to prove that every guardrail and recovery path in the
placement pipeline actually fires.  It is importable from production code
paths' point of view, but installs nothing unless explicitly asked to.

:mod:`repro.testing.legal` is the shared legality oracle: one vectorized
:func:`~repro.testing.legal.assert_legal` that every legalizer test calls,
so "legal" means exactly one thing across the whole suite.
"""

from .faults import (
    FAULT_FACTORIES,
    FAULT_SPEC_ENV,
    FaultInjection,
    KILL_EXIT_CODE,
    burn_deadline,
    corrupt_checkpoint,
    corrupt_field,
    env_faults,
    fail_cg,
    hang_worker,
    install_env_hooks,
    install_process_faults,
    kill_worker,
    resolve_fault,
    slow_start,
)
from .legal import assert_legal

__all__ = [
    "FAULT_FACTORIES",
    "FAULT_SPEC_ENV",
    "FaultInjection",
    "KILL_EXIT_CODE",
    "assert_legal",
    "burn_deadline",
    "corrupt_checkpoint",
    "corrupt_field",
    "env_faults",
    "fail_cg",
    "hang_worker",
    "install_env_hooks",
    "install_process_faults",
    "kill_worker",
    "resolve_fault",
    "slow_start",
]
