"""Heat-driven placement (Section 5).

"By replacing the congestion map with a heat map we can use the same
approach to avoid hot spots in the layout": bins hotter than the average
contribute extra area demand proportional to their excess temperature, so
the density forces push power away from hot spots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core import KraftwerkPlacer, PlacementResult, PlacerConfig
from ..geometry import PlacementRegion
from ..netlist import Netlist, Placement
from .heatmap import ThermalModel, ThermalResult


@dataclass
class HeatResult:
    result: PlacementResult
    thermal: ThermalResult  # final temperature field

    @property
    def placement(self) -> Placement:
        return self.result.placement

    @property
    def peak_temperature(self) -> float:
        return self.thermal.peak_temperature


class HeatDrivenPlacer:
    """Kraftwerk with the heat map folded into the density."""

    def __init__(
        self,
        netlist: Netlist,
        region: PlacementRegion,
        config: Optional[PlacerConfig] = None,
        conductivity: float = 1.0e-4,
        heat_weight: float = 1.0,
    ):
        self.placer = KraftwerkPlacer(netlist, region, config)
        self.model = ThermalModel(
            region,
            grid=self.placer.force_calc.density_model.grid,
            conductivity=conductivity,
        )
        self.heat_weight = heat_weight
        if not any(c.power > 0 for c in netlist.cells):
            raise ValueError("heat-driven placement needs cells with power > 0")

    def place(self, initial: Optional[Placement] = None) -> HeatResult:
        """Place with the power map folded into the density.

        The *power* map, not the solved temperature, drives the forces: heat
        diffusion smears hot spots into one broad chip-wide bump, which only
        pushes everything toward the boundary; the sharp power excess makes
        each hot cell demand extra area around itself, so hot cells separate
        from each other — which is what actually lowers the solved peak
        temperature.  Total extra demand is calibrated to ``0.4 *
        heat_weight`` of the region area — strong enough that the default
        weight visibly separates a hot module.
        """
        from .heatmap import power_map

        grid = self.model.grid
        region_area = self.placer.region.area

        def extra_demand(_iteration: int, placement: Placement) -> np.ndarray:
            power = power_map(placement, grid)
            excess = np.maximum(power - power.mean(), 0.0)
            total = float(excess.sum())
            if total <= 0.0:
                return grid.zeros()
            scale = self.heat_weight * 0.4 * region_area / total
            return scale * excess

        result = self.placer.place(initial=initial, extra_demand_hook=extra_demand)
        final_thermal = self.model.solve(result.placement)
        return HeatResult(result=result, thermal=final_thermal)
