"""Steady-state thermal simulation on the placement grid.

The heat substrate for Section 5's heat-driven placement: cell power maps
onto grid bins, and the steady-state temperature field solves the discrete
heat equation

    -k ∆T = P,    T = T_ambient on the boundary

with a standard 5-point Laplacian and a Dirichlet boundary (the package
boundary is the heat sink).  Temperatures are relative to ambient; absolute
calibration is irrelevant for placement, which only reacts to the *shape*
of the field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..geometry import Grid, PlacementRegion
from ..netlist import Netlist, Placement
from ..core.density import splat_bilinear


def power_map(placement: Placement, grid: Grid) -> np.ndarray:
    """Dissipated power per bin (watts), cell power splatted bilinearly."""
    nl = placement.netlist
    powers = np.array([c.power for c in nl.cells])
    active = np.flatnonzero(powers > 0.0)
    if active.size == 0:
        return grid.zeros()
    return splat_bilinear(
        grid, placement.x[active], placement.y[active], powers[active]
    )


@dataclass
class ThermalResult:
    grid: Grid
    power: np.ndarray  # W per bin
    temperature: np.ndarray  # K above ambient per bin

    @property
    def peak_temperature(self) -> float:
        return float(self.temperature.max())

    @property
    def mean_temperature(self) -> float:
        return float(self.temperature.mean())


class ThermalModel:
    """Solves the steady-state heat equation for placements on one grid."""

    def __init__(
        self,
        region: PlacementRegion,
        grid: Optional[Grid] = None,
        bins: int = 32,
        conductivity: float = 1.0e-4,  # W / (um * K), silicon-ish lateral
    ):
        self.region = region
        self.grid = grid or Grid(region.bounds, bins, bins)
        self.conductivity = conductivity
        self._laplacian = self._build_laplacian()
        self._solver = spla.factorized(self._laplacian.tocsc())

    def _build_laplacian(self) -> sp.spmatrix:
        ny, nx = self.grid.shape
        n = nx * ny
        dx2 = self.grid.dx ** 2
        dy2 = self.grid.dy ** 2
        k = self.conductivity
        main = np.full(n, 2.0 * k / dx2 + 2.0 * k / dy2)
        east = np.full(n, -k / dx2)
        west = np.full(n, -k / dx2)
        north = np.full(n, -k / dy2)
        south = np.full(n, -k / dy2)
        # Dirichlet boundary: neighbors outside the grid are ambient (zero),
        # so boundary rows simply lose those couplings (handled by masking).
        east[np.arange(n) % nx == nx - 1] = 0.0
        west[np.arange(n) % nx == 0] = 0.0
        diags = [main, west[1:], east[:-1], south[nx:], north[:-nx]]
        offsets = [0, -1, 1, -nx, nx]
        return sp.diags(diags, offsets, shape=(n, n), format="csr")

    def solve(self, placement: Placement) -> ThermalResult:
        power = power_map(placement, self.grid)
        # Convert bin power (W) to volumetric source (W per area).
        rhs = (power / self.grid.bin_area).ravel()
        temperature = self._solver(rhs).reshape(self.grid.shape)
        return ThermalResult(grid=self.grid, power=power, temperature=temperature)
