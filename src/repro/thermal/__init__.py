"""Thermal substrate: power maps, steady-state heat, heat-driven placement."""

from .heatmap import ThermalModel, ThermalResult, power_map
from .driven import HeatDrivenPlacer, HeatResult

__all__ = [
    "ThermalModel",
    "ThermalResult",
    "power_map",
    "HeatDrivenPlacer",
    "HeatResult",
]
