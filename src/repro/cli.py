"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``    print structural statistics of a suite circuit or netlist file.
``place``    global placement (+ optional legalization, SVG, output files).
``timing``   longest-path analysis of a placement.
``convert``  convert between the repro text format and Bookshelf.
``bench``    place + legalize the generator circuits under telemetry and
             write the ``BENCH_kraftwerk.json`` regression report.

Examples::

    python -m repro stats --circuit biomed --scale 0.2
    python -m repro place --circuit primary1 --scale 0.3 --legalize \
        --out out/primary1 --svg
    python -m repro timing --netlist out/primary1.netlist \
        --placement out/primary1.placement
    python -m repro convert --netlist out/primary1.netlist \
        --placement out/primary1.placement --bookshelf out/primary1
    python -m repro bench --sizes tiny,small
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Tuple

from .core import (
    FAST_K,
    KraftwerkPlacer,
    NumericalHealthError,
    PlacerConfig,
    STANDARD_K,
)
from .evaluation import distribution_stats, format_table, hpwl_meters, total_overlap
from .geometry import PlacementRegion
from .legalize import final_placement
from .netlist import (
    Netlist,
    Placement,
    ROW_HEIGHT,
    load_netlist,
    load_placement,
    make_circuit,
    save_bookshelf,
    save_netlist,
    save_placement,
    validate_netlist,
)
from .timing import StaticTimingAnalyzer


def _load_design(args) -> Tuple[Netlist, PlacementRegion]:
    """Netlist + region from either --circuit or --netlist."""
    if args.circuit:
        generated = make_circuit(args.circuit, scale=args.scale)
        return generated.netlist, generated.region
    if args.netlist:
        netlist = load_netlist(args.netlist)
        region = _region_for(netlist, args.utilization)
        return netlist, region
    raise SystemExit("need --circuit NAME or --netlist FILE")


def _region_for(netlist: Netlist, utilization: float) -> PlacementRegion:
    """Square-ish region sized from cell area at the given utilization."""
    area = netlist.movable_area() / utilization
    height = max(ROW_HEIGHT, round((area**0.5) / ROW_HEIGHT) * ROW_HEIGHT)
    width = area / height
    return PlacementRegion.standard_cell(width, height, ROW_HEIGHT)


def _add_design_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--circuit", help="suite circuit name (e.g. biomed)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="suite size scale factor (default 0.2)")
    parser.add_argument("--netlist", help="repro netlist file instead of --circuit")
    parser.add_argument("--utilization", type=float, default=0.8,
                        help="region utilization when deriving a region")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_stats(args) -> int:
    netlist, region = _load_design(args)
    stats = netlist.stats()
    rows = [[key, value] for key, value in stats.items()]
    rows.append(["region W x H [um]", f"{region.width:.0f} x {region.height:.0f}"])
    rows.append(["rows", region.num_rows])
    print(format_table(["metric", "value"], rows, title=f"circuit {netlist.name}"))
    return 0


def cmd_place(args) -> int:
    netlist, region = _load_design(args)
    netlist, report = validate_netlist(netlist, region=region, strict=args.strict)
    if report.issues:
        print(f"validation      : {report.summary()}", file=sys.stderr)
    config = PlacerConfig(
        K=FAST_K if args.fast else STANDARD_K,
        net_model=args.net_model,
        verbose=args.verbose,
        deadline_seconds=args.deadline,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    resume_from = None
    if args.resume:
        if not args.checkpoint:
            raise SystemExit("--resume needs --checkpoint PATH")
        if Path(args.checkpoint).exists():
            resume_from = args.checkpoint
        else:
            print(f"no checkpoint at {args.checkpoint}; starting fresh",
                  file=sys.stderr)
    t0 = time.perf_counter()
    result = KraftwerkPlacer(netlist, region, config).place(
        resume_from=resume_from
    )
    placement = result.placement
    status = f"converged={result.converged}"
    if result.timed_out:
        status += ", deadline hit: returning best placement seen"
    if result.recovery_escalations:
        status += f", {result.recovery_escalations} solver recovery escalations"
    print(f"global placement: {result.hpwl_m:.4f} m in {result.iterations} "
          f"transformations ({time.perf_counter() - t0:.1f}s, {status})")
    if args.legalize:
        placement = final_placement(placement, region)
        print(f"final placement : {hpwl_meters(placement):.4f} m "
              f"(overlap {total_overlap(placement):.2f} um^2)")
    dist = distribution_stats(placement, region)
    print(f"distribution    : peak density {dist.max_density:.2f}, "
          f"largest empty square {dist.empty_square_ratio:.1f}x avg cell")
    if args.out:
        base = Path(args.out)
        base.parent.mkdir(parents=True, exist_ok=True)
        save_netlist(netlist, base.with_suffix(".netlist"))
        save_placement(placement, base.with_suffix(".placement"))
        print(f"wrote {base.with_suffix('.netlist')} and "
              f"{base.with_suffix('.placement')}")
        if args.svg:
            from .viz import placement_svg

            placement_svg(placement, region, base.with_suffix(".svg"))
            print(f"wrote {base.with_suffix('.svg')}")
    elif args.svg:
        raise SystemExit("--svg needs --out BASEPATH")
    return 0


def cmd_timing(args) -> int:
    netlist, region = _load_design(args)
    if not args.placement:
        raise SystemExit("timing needs --placement FILE")
    placement = load_placement(netlist, args.placement)
    analyzer = StaticTimingAnalyzer(netlist)
    sta = analyzer.analyze(placement)
    bound = analyzer.lower_bound_ns()
    print(f"longest path : {sta.max_delay_ns:.3f} ns "
          f"(zero-wire bound {bound:.3f} ns)")
    names = [netlist.cells[i].name for i in sta.critical_path]
    print(f"critical path ({len(names)} cells): " + " -> ".join(names[:12])
          + (" ..." if len(names) > 12 else ""))
    critical = sta.critical_nets(0.03)
    rows = [
        [netlist.nets[j].name, netlist.nets[j].degree, sta.net_slack_ns[j]]
        for j in critical[:10]
    ]
    print(format_table(["net", "pins", "slack [ns]"], rows,
                       title="most critical nets"))
    return 0


def cmd_route(args) -> int:
    netlist, region = _load_design(args)
    if not args.placement:
        raise SystemExit("route needs --placement FILE")
    placement = load_placement(netlist, args.placement)
    from .congestion import PatternRouter

    router = PatternRouter(
        region, bins=args.bins, tracks_per_edge=args.tracks
    )
    result = router.route(placement)
    print(f"routed wirelength : {result.wirelength_um / 1e6:.4f} m")
    print(f"total overflow    : {result.total_overflow:.1f} "
          f"(max utilization {result.max_usage_ratio:.2f})")
    print(f"rip-up iterations : {result.iterations}")
    if args.svg:
        from .viz import heatmap_svg

        heatmap_svg(router.grid, result.congestion_map(), args.svg)
        print(f"wrote congestion map {args.svg}")
    return 0


def cmd_bench(args) -> int:
    # Imported lazily: bench pulls in the whole placer stack.
    from .observability.bench import resolve_sizes, write_bench_report

    # --sizes (comma list or "all") wins; legacy --size selects one size;
    # with neither, the full tiny/small/medium sweep runs.
    spec = args.sizes if args.sizes is not None else args.size
    try:
        sizes = resolve_sizes(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = write_bench_report(
        sizes,
        out_path=args.out,
        seed=args.seed,
        legalize=not args.no_legalize,
        trace_path=args.trace,
    )
    for run in report["runs"]:
        phases = run["phases"]
        hot = sorted(phases.items(), key=lambda kv: -kv[1])[:3]
        hot_str = ", ".join(f"{name} {sec:.3f}s" for name, sec in hot)
        det = "ok" if run["determinism"]["deterministic"] else "MISMATCH"
        print(
            f"bench {run['size']:<6}: hpwl {run['final_hpwl_m']:.4f} m, "
            f"{run['iterations']} iterations, determinism {det}"
        )
        print(f"  hot phases: {hot_str}")
    print(f"wrote {args.out}")
    if args.trace:
        print(f"wrote trace {args.trace}")
    return 0 if report["deterministic"] else 1


def cmd_convert(args) -> int:
    netlist, region = _load_design(args)
    placement = (
        load_placement(netlist, args.placement) if args.placement else None
    )
    if not args.bookshelf:
        raise SystemExit("convert needs --bookshelf BASEPATH")
    aux = save_bookshelf(netlist, region, args.bookshelf, placement)
    print(f"wrote {aux} (+ .nodes/.nets/.pl/.scl)")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kraftwerk (DAC 1998) force-directed placement toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print circuit statistics")
    _add_design_args(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_place = sub.add_parser("place", help="run global placement")
    _add_design_args(p_place)
    p_place.add_argument("--fast", action="store_true",
                         help="fast mode (K = 1.0) instead of standard (K = 0.2)")
    p_place.add_argument("--net-model", choices=["clique", "b2b"],
                         default="clique")
    p_place.add_argument("--legalize", action="store_true",
                         help="run final placement (Abacus + improvement)")
    p_place.add_argument("--out", help="basepath for .netlist/.placement output")
    p_place.add_argument("--svg", action="store_true",
                         help="also write an SVG rendering (needs --out)")
    p_place.add_argument("--verbose", action="store_true")
    p_place.add_argument("--strict", action="store_true",
                         help="reject repairable netlist defects instead of "
                              "fixing them")
    p_place.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget; on expiry the best "
                              "placement seen so far is returned")
    p_place.add_argument("--checkpoint", metavar="PATH",
                         help="periodically snapshot the run state here")
    p_place.add_argument("--checkpoint-every", type=int, default=10,
                         metavar="N", help="iterations between snapshots "
                         "(default 10)")
    p_place.add_argument("--resume", action="store_true",
                         help="resume from --checkpoint if it exists")
    p_place.set_defaults(func=cmd_place)

    p_timing = sub.add_parser("timing", help="longest-path analysis")
    _add_design_args(p_timing)
    p_timing.add_argument("--placement", help="repro placement file")
    p_timing.set_defaults(func=cmd_timing)

    p_route = sub.add_parser("route", help="global-route a placement")
    _add_design_args(p_route)
    p_route.add_argument("--placement", help="repro placement file")
    p_route.add_argument("--bins", type=int, default=24)
    p_route.add_argument("--tracks", type=float, default=12.0,
                         help="routing tracks per grid edge")
    p_route.add_argument("--svg", help="write the congestion map here")
    p_route.set_defaults(func=cmd_route)

    p_bench = sub.add_parser(
        "bench", help="run the telemetry/regression bench suite"
    )
    p_bench.add_argument("--sizes", default=None,
                         help="comma-separated sizes or 'all' "
                              "(default: all of tiny,small,medium)")
    p_bench.add_argument("--size", default=None,
                         choices=["tiny", "small", "medium", "all"],
                         help="single size (legacy alias for --sizes)")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", default="BENCH_kraftwerk.json",
                         help="report path (default BENCH_kraftwerk.json)")
    p_bench.add_argument("--no-legalize", action="store_true",
                         help="skip the final placement step")
    p_bench.add_argument("--trace",
                         help="also write the primary run's JSONL trace here")
    p_bench.set_defaults(func=cmd_bench)

    p_convert = sub.add_parser("convert", help="export to Bookshelf")
    _add_design_args(p_convert)
    p_convert.add_argument("--placement", help="repro placement file")
    p_convert.add_argument("--bookshelf", help="output basepath")
    p_convert.set_defaults(func=cmd_convert)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except NumericalHealthError as exc:
        print(f"error: numerical health check failed: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
