"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``    print structural statistics of a suite circuit or netlist file.
``place``    global placement (+ optional legalization, SVG, output files).
``batch``    run many jobs of one design (multi-start seeds) concurrently
             over the parallel batch engine.
``sweep``    K / net-model / seed parameter sweep over the batch engine.
``timing``   longest-path analysis of a placement.
``convert``  convert between the repro text format and Bookshelf.
``bench``    place + legalize the generator circuits under telemetry and
             write the ``BENCH_kraftwerk.json`` regression report.
``serve``    run the fault-tolerant placement service over a jobs file or
             a spool directory (supervised workers, retries, migration).
``submit``   drop one job spec into a ``repro serve --spool`` directory
             (optionally waiting for its result file).

Examples::

    python -m repro stats --circuit biomed --scale 0.2
    python -m repro place --circuit primary1 --scale 0.3 --legalize \
        --out out/primary1 --svg
    python -m repro batch --circuit tiny --jobs 8 --workers 4 \
        --compare-serial
    python -m repro sweep --circuit tiny --K 0.2,1.0 --seeds 0,1,2
    python -m repro timing --netlist out/primary1.netlist \
        --placement out/primary1.placement
    python -m repro convert --netlist out/primary1.netlist \
        --placement out/primary1.placement --bookshelf out/primary1
    python -m repro bench --sizes tiny,small
    python -m repro serve --jobs jobs.json --workers 2 --out report.json
    python -m repro serve --spool /tmp/spool --workers 2 --drain-idle 5 &
    python -m repro submit --spool /tmp/spool --circuit tiny --seed 3 --wait
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Tuple

from .core import KraftwerkPlacer, NumericalHealthError, PlacerConfig
from .evaluation import distribution_stats, format_table, hpwl_meters, total_overlap
from .geometry import PlacementRegion
from .legalize import final_placement
from .netlist import (
    Netlist,
    Placement,
    ROW_HEIGHT,
    load_netlist,
    load_placement,
    make_circuit,
    save_bookshelf,
    save_netlist,
    save_placement,
    validate_netlist,
)
from .timing import StaticTimingAnalyzer


def _load_design(args) -> Tuple[Netlist, PlacementRegion]:
    """Netlist + region from either --circuit or --netlist."""
    if args.circuit:
        generated = make_circuit(args.circuit, scale=args.scale)
        return generated.netlist, generated.region
    if args.netlist:
        netlist = load_netlist(args.netlist)
        region = _region_for(netlist, args.utilization)
        return netlist, region
    raise SystemExit("need --circuit NAME or --netlist FILE")


def _region_for(netlist: Netlist, utilization: float) -> PlacementRegion:
    """Square-ish region sized from cell area at the given utilization."""
    from .api import region_for_netlist

    return region_for_netlist(netlist, utilization)


def _add_design_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--circuit", help="suite circuit name (e.g. biomed)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="suite size scale factor (default 0.2)")
    parser.add_argument("--netlist", help="repro netlist file instead of --circuit")
    parser.add_argument("--utilization", type=float, default=0.8,
                        help="region utilization when deriving a region")


def _add_placer_args(
    parser: argparse.ArgumentParser, checkpointing: bool = True
) -> None:
    """Placer knobs shared by place/batch/sweep.

    Every flag maps onto one :class:`PlacerConfig` field via
    :meth:`PlacerConfig.from_args`, so all subcommands serialize config
    identically (and identically to checkpoints and batch job specs).
    """
    parser.add_argument("--fast", action="store_true",
                        help="fast mode (K = 1.0) instead of standard (K = 0.2)")
    parser.add_argument("--net-model", choices=["clique", "b2b"],
                        default="clique", dest="net_model")
    parser.add_argument("--backend", choices=["numpy", "cupy", "torch"],
                        default=None,
                        help="array backend for the field/solve hot path "
                             "(default numpy; cupy/torch need the optional "
                             "dependency installed)")
    parser.add_argument("--spectral-mode", choices=["fft", "dct", "direct"],
                        default=None, dest="spectral_mode",
                        help="Poisson solver: fft (free-space, default), "
                             "dct (Neumann boundaries), or direct O(n^2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="placer jitter seed (default: config default)")
    parser.add_argument("--max-iterations", type=int, default=None,
                        dest="max_iterations", metavar="N",
                        help="cap on placement transformations")
    parser.add_argument("--multilevel", type=int, default=None, metavar="N",
                        help="coarsening levels for the multilevel V-cycle "
                             "(default 0 = flat placement)")
    parser.add_argument("--multilevel-refine", type=int, default=None,
                        dest="multilevel_refine", metavar="N",
                        help="refinement transformations per V-cycle level "
                             "(default 12)")
    parser.add_argument("--legalize-bands", type=int, default=None,
                        dest="legalize_bands", metavar="N",
                        help="row bands for the banded-parallel Abacus snap "
                             "(0 = auto, 1 = serial; results are identical "
                             "at every setting)")
    parser.add_argument("--legalize-threads", type=int, default=None,
                        dest="legalize_threads", metavar="N",
                        help="worker threads for the banded snap (default 1)")
    parser.add_argument("--improver-min-gain", type=float, default=None,
                        dest="improver_min_gain", metavar="FRAC",
                        help="stop detailed improvement when a pass gains "
                             "less than this fraction of HPWL (default 0 = "
                             "run every pass)")
    parser.add_argument("--verbose", action="store_true")
    if checkpointing:
        parser.add_argument("--deadline", type=float, default=None,
                            metavar="SECONDS",
                            help="per-run wall-clock budget; on expiry the "
                                 "best placement seen so far is returned")
        parser.add_argument("--checkpoint", metavar="PATH",
                            help="periodically snapshot the run state here")
        parser.add_argument("--checkpoint-every", type=int, default=10,
                            metavar="N", help="iterations between snapshots "
                            "(default 10)")
        parser.add_argument("--resume", action="store_true",
                            help="resume from --checkpoint if it exists")


def _batch_source(args):
    """The (picklable) job source string/path for batch/sweep commands."""
    if args.circuit:
        return args.circuit
    if args.netlist:
        return args.netlist
    raise SystemExit("need --circuit NAME or --netlist FILE")


def _parse_seeds(args) -> list:
    """``--seeds 0,1,2`` wins; else ``--jobs N`` means seeds 0..N-1."""
    if args.seeds:
        try:
            return [int(s) for s in args.seeds.split(",") if s.strip()]
        except ValueError:
            raise SystemExit(f"malformed --seeds {args.seeds!r}")
    return list(range(args.jobs))


def _print_progress(result, done: int, total: int) -> None:
    if result.ok:
        line = (f"  [{done}/{total}] {result.name}: "
                f"hpwl {result.final_hpwl_m:.4f} m, "
                f"{result.iterations} it, {result.seconds:.2f}s")
        if result.timed_out:
            line += " (deadline hit)"
    else:
        line = (f"  [{done}/{total}] {result.name}: FAILED "
                f"({result.error_type}: {result.error})")
    print(line, flush=True)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_stats(args) -> int:
    netlist, region = _load_design(args)
    stats = netlist.stats()
    rows = [[key, value] for key, value in stats.items()]
    rows.append(["region W x H [um]", f"{region.width:.0f} x {region.height:.0f}"])
    rows.append(["rows", region.num_rows])
    print(format_table(["metric", "value"], rows, title=f"circuit {netlist.name}"))
    return 0


def cmd_place(args) -> int:
    netlist, region = _load_design(args)
    netlist, report = validate_netlist(netlist, region=region, strict=args.strict)
    if report.issues:
        print(f"validation      : {report.summary()}", file=sys.stderr)
    config = PlacerConfig.from_args(args)
    resume_from = None
    if args.resume:
        if not args.checkpoint:
            raise SystemExit("--resume needs --checkpoint PATH")
        if Path(args.checkpoint).exists():
            resume_from = args.checkpoint
        else:
            print(f"no checkpoint at {args.checkpoint}; starting fresh",
                  file=sys.stderr)
    t0 = time.perf_counter()
    if config.multilevel_levels > 0:
        from .core.multilevel import MultilevelPlacer

        ml = MultilevelPlacer(netlist, region, config).place(
            resume_from=resume_from
        )
        result = ml.refine_result
        iterations = ml.total_iterations
        if ml.coarse_results:
            coarsest = ml.coarse_results[0].placement.netlist.num_movable
            print(f"multilevel      : {ml.levels} coarsening levels, "
                  f"coarsest {coarsest} cells")
        else:
            print("multilevel      : netlist too small to coarsen")
    else:
        result = KraftwerkPlacer(netlist, region, config).place(
            resume_from=resume_from
        )
        iterations = result.iterations
    placement = result.placement
    status = f"converged={result.converged}"
    if result.timed_out:
        status += ", deadline hit: returning best placement seen"
    if result.recovery_escalations:
        status += f", {result.recovery_escalations} solver recovery escalations"
    print(f"global placement: {result.hpwl_m:.4f} m in {iterations} "
          f"transformations ({time.perf_counter() - t0:.1f}s, {status})")
    if args.legalize:
        placement = final_placement(placement, region)
        print(f"final placement : {hpwl_meters(placement):.4f} m "
              f"(overlap {total_overlap(placement):.2f} um^2)")
    dist = distribution_stats(placement, region)
    print(f"distribution    : peak density {dist.max_density:.2f}, "
          f"largest empty square {dist.empty_square_ratio:.1f}x avg cell")
    if args.out:
        base = Path(args.out)
        base.parent.mkdir(parents=True, exist_ok=True)
        save_netlist(netlist, base.with_suffix(".netlist"))
        save_placement(placement, base.with_suffix(".placement"))
        print(f"wrote {base.with_suffix('.netlist')} and "
              f"{base.with_suffix('.placement')}")
        if args.svg:
            from .viz import placement_svg

            placement_svg(placement, region, base.with_suffix(".svg"))
            print(f"wrote {base.with_suffix('.svg')}")
    elif args.svg:
        raise SystemExit("--svg needs --out BASEPATH")
    return 0


def cmd_batch(args) -> int:
    from .parallel import PlacementJob, resolve_workers, run_batch

    source = _batch_source(args)
    seeds = _parse_seeds(args)
    config = PlacerConfig.from_args(args).to_dict()
    config["deadline_seconds"] = args.deadline
    jobs = [
        PlacementJob(
            source=source,
            seed=seed,
            config=config,
            legalize=args.legalize,
            max_iterations=args.max_iterations,
            scale=args.scale,
            utilization=args.utilization,
        )
        for seed in seeds
    ]
    workers = resolve_workers(args.workers)

    serial = None
    if args.compare_serial:
        print(f"batch {source}: {len(jobs)} jobs, serial baseline", flush=True)
        serial = run_batch(
            jobs, workers=0, keep_placements=False, progress=_print_progress
        )
    print(f"batch {source}: {len(jobs)} jobs, {workers} workers "
          f"({args.mp_context})", flush=True)
    batch = run_batch(
        jobs,
        workers=workers,
        mp_context=args.mp_context,
        trace_dir=args.trace_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        keep_placements=False,
        progress=_print_progress,
    )

    ok, failed = batch.ok_jobs, batch.failed_jobs
    print(f"batch summary   : {len(ok)}/{len(batch.jobs)} jobs ok, "
          f"wall {batch.wall_seconds:.2f}s, "
          f"speedup est {batch.speedup_estimate:.2f}x "
          f"(serial est {batch.serial_seconds_estimate:.2f}s)")
    if batch.best is not None:
        print(f"best / median   : {batch.best_hpwl_m:.4f} m ({batch.best.name}) "
              f"/ {batch.median_hpwl_m:.4f} m")
    for job in failed:
        print(f"failed          : {job.name}: {job.error_type}: {job.error}",
              file=sys.stderr)

    identical = None
    if serial is not None:
        identical = serial.hpwls == batch.hpwls and len(serial.ok_jobs) == len(ok)
        speedup = (serial.wall_seconds / batch.wall_seconds
                   if batch.wall_seconds > 0 else 1.0)
        print(f"vs serial       : serial wall {serial.wall_seconds:.2f}s, "
              f"measured speedup {speedup:.2f}x, "
              f"per-job HPWLs {'bit-identical' if identical else 'MISMATCH'}")

    summary = batch.summary()
    if serial is not None:
        summary["serial_wall_seconds"] = round(serial.wall_seconds, 6)
        summary["measured_speedup"] = round(
            serial.wall_seconds / batch.wall_seconds
            if batch.wall_seconds > 0 else 1.0, 4
        )
        summary["hpwls_identical_to_serial"] = identical
    if args.out:
        import json as _json

        out = Path(args.out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            _json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    if args.record_bench:
        from .observability.bench import merge_batch_record

        merge_batch_record(args.record_bench, summary)
        print(f"recorded batch run in {args.record_bench}")
    if failed:
        from collections import Counter

        classes = Counter(j.error_type or "unknown" for j in failed)
        print("failure classes : "
              + ", ".join(f"{name} x{count}"
                          for name, count in sorted(classes.items())),
              file=sys.stderr)
        if not ok:
            # Same contract as the single-run CLI: exit 2 when *nothing*
            # succeeded (vs 1 for a partial failure).
            return 2
    if failed or identical is False:
        return 1
    return 0


def cmd_sweep(args) -> int:
    import itertools
    import json as _json

    from .parallel import PlacementJob, run_batch

    source = _batch_source(args)
    try:
        k_values = [float(k) for k in args.K.split(",") if k.strip()]
        models = [m.strip() for m in args.net_models.split(",") if m.strip()]
        if args.jobs is not None:
            seeds = list(range(args.jobs))
        else:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError as exc:
        raise SystemExit(f"malformed sweep argument: {exc}")
    if not (k_values and models and seeds):
        raise SystemExit("sweep needs at least one K, net model and seed")

    jobs = []
    for K, model, seed in itertools.product(k_values, models, seeds):
        config = PlacerConfig(K=K, net_model=model).to_dict()
        jobs.append(PlacementJob(
            source=source,
            seed=seed,
            config=config,
            name=f"{source}-K{K:g}-{model}-s{seed}",
            legalize=args.legalize,
            max_iterations=args.max_iterations,
            scale=args.scale,
            utilization=args.utilization,
        ))
    print(f"sweep {source}: {len(jobs)} jobs "
          f"({len(k_values)} K x {len(models)} models x {len(seeds)} seeds)",
          flush=True)
    batch = run_batch(
        jobs,
        workers=args.workers,
        mp_context=args.mp_context,
        keep_placements=False,
        progress=_print_progress,
    )

    rows = []
    combos = []
    for K, model in itertools.product(k_values, models):
        combo = [j for j in batch.ok_jobs
                 if j.name.startswith(f"{source}-K{K:g}-{model}-")]
        if not combo:
            rows.append([f"{K:g}", model, "-", "-", "-", "-"])
            continue
        hpwls = sorted(j.final_hpwl_m for j in combo)
        median = hpwls[len(hpwls) // 2] if len(hpwls) % 2 else (
            0.5 * (hpwls[len(hpwls) // 2 - 1] + hpwls[len(hpwls) // 2])
        )
        mean_it = sum(j.iterations for j in combo) / len(combo)
        secs = sum(j.seconds for j in combo)
        rows.append([f"{K:g}", model, f"{hpwls[0]:.4f}", f"{median:.4f}",
                     f"{mean_it:.1f}", f"{secs:.2f}"])
        combos.append({
            "K": K, "net_model": model, "seeds": [j.seed for j in combo],
            "best_hpwl_m": hpwls[0], "median_hpwl_m": median,
            "mean_iterations": mean_it, "seconds": secs,
        })
    print(format_table(
        ["K", "model", "best hpwl [m]", "median [m]", "mean iters", "cpu [s]"],
        rows, title=f"sweep {source}"))
    print(f"wall {batch.wall_seconds:.2f}s, {batch.workers} workers, "
          f"speedup est {batch.speedup_estimate:.2f}x")
    for job in batch.failed_jobs:
        print(f"failed: {job.name}: {job.error_type}: {job.error}",
              file=sys.stderr)
    if args.out:
        summary = batch.summary()
        summary["combos"] = combos
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            _json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    return 1 if batch.failed_jobs else 0


def cmd_timing(args) -> int:
    netlist, region = _load_design(args)
    if not args.placement:
        raise SystemExit("timing needs --placement FILE")
    placement = load_placement(netlist, args.placement)
    analyzer = StaticTimingAnalyzer(netlist)
    sta = analyzer.analyze(placement)
    bound = analyzer.lower_bound_ns()
    print(f"longest path : {sta.max_delay_ns:.3f} ns "
          f"(zero-wire bound {bound:.3f} ns)")
    names = [netlist.cells[i].name for i in sta.critical_path]
    print(f"critical path ({len(names)} cells): " + " -> ".join(names[:12])
          + (" ..." if len(names) > 12 else ""))
    critical = sta.critical_nets(0.03)
    rows = [
        [netlist.nets[j].name, netlist.nets[j].degree, sta.net_slack_ns[j]]
        for j in critical[:10]
    ]
    print(format_table(["net", "pins", "slack [ns]"], rows,
                       title="most critical nets"))
    return 0


def cmd_route(args) -> int:
    netlist, region = _load_design(args)
    if not args.placement:
        raise SystemExit("route needs --placement FILE")
    placement = load_placement(netlist, args.placement)
    from .congestion import PatternRouter

    router = PatternRouter(
        region, bins=args.bins, tracks_per_edge=args.tracks
    )
    result = router.route(placement)
    print(f"routed wirelength : {result.wirelength_um / 1e6:.4f} m")
    print(f"total overflow    : {result.total_overflow:.1f} "
          f"(max utilization {result.max_usage_ratio:.2f})")
    print(f"rip-up iterations : {result.iterations}")
    if args.svg:
        from .viz import heatmap_svg

        heatmap_svg(router.grid, result.congestion_map(), args.svg)
        print(f"wrote congestion map {args.svg}")
    return 0


def cmd_bench(args) -> int:
    # Imported lazily: bench pulls in the whole placer stack.
    from .observability.bench import resolve_sizes, write_bench_report

    # --sizes (comma list or "all") wins; legacy --size selects one size;
    # with neither, the full tiny/small/medium sweep runs.
    spec = args.sizes if args.sizes is not None else args.size
    try:
        sizes = resolve_sizes(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = write_bench_report(
        sizes,
        out_path=args.out,
        seed=args.seed,
        legalize=not args.no_legalize,
        trace_path=args.trace,
        profile=args.profile,
    )
    for run in report["runs"]:
        phases = run["phases"]
        shares = run["phase_shares"]["shares"]
        hot = sorted(phases.items(), key=lambda kv: -kv[1])[:3]
        hot_str = ", ".join(
            f"{name} {sec:.3f}s ({shares[name]:.0%})" for name, sec in hot
        )
        det = "ok" if run["determinism"]["deterministic"] else "MISMATCH"
        print(
            f"bench {run['size']:<6}: hpwl {run['final_hpwl_m']:.4f} m, "
            f"{run['iterations']} iterations, "
            f"{run['total_seconds']:.2f}s total, determinism {det}"
        )
        print(f"  hot phases: {hot_str}")
        bottleneck = run["phase_shares"]["bottleneck"]
        top_phase = run["phase_shares"]["top_phase"]
        if bottleneck is not None:
            print(
                f"  BOTTLENECK: {bottleneck} takes "
                f"{shares[bottleneck]:.0%} of phase time"
            )
        elif top_phase is not None:
            print(
                f"  top phase: {top_phase} ({shares[top_phase]:.0%} "
                f"of phase time)"
            )
    print(f"wrote {args.out}")
    if args.trace:
        print(f"wrote trace {args.trace}")
    return 0 if report["deterministic"] else 1


def _load_job_specs(path) -> list:
    """Read a jobs file: a JSON list of specs, or ``{"jobs": [...]}``."""
    import json as _json

    data = _json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict):
        data = data.get("jobs")
    if not isinstance(data, list):
        raise SystemExit(f"{path}: expected a JSON list of job specs "
                         f"(or an object with a 'jobs' list)")
    return [dict(spec) for spec in data]


def _write_result_file(results_dir: Path, job_id: str, payload: dict) -> Path:
    """Atomically write one job's result JSON (write-tmp-then-rename)."""
    import json as _json

    results_dir.mkdir(parents=True, exist_ok=True)
    final = results_dir / f"{job_id}.json"
    tmp = results_dir / f".{job_id}.json.tmp"
    tmp.write_text(
        _json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    tmp.replace(final)
    return final


def _print_job_result(summary: dict) -> None:
    state = summary.get("state")
    job_id = summary.get("job_id")
    if state == "done":
        hpwl = summary.get("final_hpwl_m") or summary.get("hpwl_m")
        attempts = summary.get("n_attempts", 1)
        line = f"  {job_id}: done, hpwl {hpwl:.4f} m"
        if attempts > 1:
            line += f" ({attempts} attempts)"
        print(line, flush=True)
    else:
        reason = summary.get("reason") or summary.get("error")
        print(f"  {job_id}: {state} ({reason})", flush=True)


def _serve_spool(service, spool: Path, drain_idle: float) -> None:
    """Serve job specs dropped into ``spool/incoming`` until idle.

    Each ``*.json`` spec file is consumed (unlinked) once submitted; each
    finished job writes ``spool/results/<id>.json`` atomically, so a
    ``repro submit --wait`` poller never reads a torn result.  The loop
    exits after *drain_idle* seconds with nothing queued, running or
    arriving.
    """
    import json as _json

    from .service import ServiceJob

    incoming = spool / "incoming"
    results = spool / "results"
    incoming.mkdir(parents=True, exist_ok=True)
    results.mkdir(parents=True, exist_ok=True)
    written = set()
    last_activity = time.monotonic()
    print(f"serve: spooling from {incoming} "
          f"(drain after {drain_idle:g}s idle)", flush=True)
    while True:
        now = time.monotonic()
        for path in sorted(incoming.glob("*.json")):
            last_activity = now
            try:
                spec = _json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                _write_result_file(results, path.stem, {
                    "job_id": path.stem, "state": "failed",
                    "failure_class": "rejected",
                    "reason": f"malformed spec: {exc}",
                })
                written.add(path.stem)
                path.unlink(missing_ok=True)
                continue
            path.unlink(missing_ok=True)
            job_id = str(spec.pop("id", None) or path.stem)
            if job_id in written or service.record(job_id) is not None:
                print(f"  duplicate job id {job_id!r}; ignoring",
                      file=sys.stderr)
                continue
            try:
                service.submit(ServiceJob.from_spec(spec, job_id=job_id))
            except ValueError as exc:
                _write_result_file(results, job_id, {
                    "job_id": job_id, "state": "failed",
                    "failure_class": "rejected", "reason": str(exc),
                })
                written.add(job_id)
        pending = False
        for record in service.records():
            if record.state.value in ("queued", "running"):
                pending = True
            elif record.job_id not in written:
                summary = record.summary()
                _write_result_file(results, record.job_id, summary)
                written.add(record.job_id)
                _print_job_result(summary)
                last_activity = now
        if pending:
            last_activity = now
        elif now - last_activity > drain_idle:
            return
        time.sleep(0.1)


def cmd_serve(args) -> int:
    from .service import (
        PlacementService,
        RetryPolicy,
        ServiceConfig,
        ServiceJob,
    )

    modes = sum(map(bool, (args.jobs_file, args.spool, args.listen)))
    if modes != 1:
        raise SystemExit("serve needs exactly one of --jobs FILE, "
                         "--spool DIR or --listen [HOST:]PORT")
    retry_on = tuple(
        s.strip() for s in args.retry_on.split(",") if s.strip()
    )
    config = ServiceConfig(
        workers=args.workers,
        mp_context=args.mp_context,
        job_timeout_seconds=args.job_timeout,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            retry_on=retry_on,
            backoff_base_s=args.backoff_base,
            backoff_cap_s=args.backoff_cap,
        ),
        max_queue_depth=args.max_queue_depth,
        tenant_quota=args.tenant_quota,
        cache_bytes=args.cache_bytes,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        trace_dir=args.trace_dir,
    )
    parse_rejects = 0
    with PlacementService(config, events=args.events) as service:
        if args.jobs_file:
            specs = _load_job_specs(args.jobs_file)
            print(f"serve: {len(specs)} jobs, {args.workers} workers "
                  f"({service.pool.mp_context})", flush=True)
            for index, spec in enumerate(specs):
                job_id = str(spec.pop("id", None) or f"j{index + 1:05d}")
                try:
                    ticket = service.submit(
                        ServiceJob.from_spec(spec, job_id=job_id)
                    )
                except ValueError as exc:
                    parse_rejects += 1
                    print(f"  rejected {job_id}: {exc}", file=sys.stderr)
                    continue
                if not ticket.admitted:
                    print(f"  shed {job_id}: {ticket.reason}",
                          file=sys.stderr)
            for record in service.drain():
                if record.state.value not in ("shed",):
                    _print_job_result(record.summary())
        elif args.spool:
            _serve_spool(service, Path(args.spool), args.drain_idle)
            service.drain()
        else:
            from .service.net import PlacementServer

            host, port = _parse_hostport(args.listen)
            with PlacementServer(service, host=host, port=port) as server:
                bound_host, bound_port = server.address
                print(f"serve: listening on {bound_host}:{bound_port} "
                      f"({args.workers} workers); Ctrl-C to drain",
                      flush=True)
                try:
                    while True:
                        time.sleep(0.5)
                except KeyboardInterrupt:
                    print("serve: interrupted; draining", file=sys.stderr)
            service.drain()
        report = service.report()

    print(f"serve summary   : {report['n_done']}/{report['n_submitted']} "
          f"done, {report['n_failed']} failed, {report['n_shed']} shed, "
          f"{report['retries']} retries")
    worker = report["worker"]
    print(f"workers         : {worker['spawns']} spawns, "
          f"{worker['deaths']} deaths, {worker['restarts']} restarts")
    latency = report["latency"]
    if latency["n"]:
        print(f"latency         : p50 {latency['p50_s']:.3f}s, "
              f"p99 {latency['p99_s']:.3f}s over {latency['n']} jobs")
    if report["failure_classes"]:
        print("failure classes : "
              + ", ".join(f"{name} x{count}" for name, count
                          in sorted(report["failure_classes"].items())),
              file=sys.stderr)
    if args.out:
        import json as _json

        out = Path(args.out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            _json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    if args.record_bench:
        from .observability.bench import merge_service_record

        bench_record = {k: v for k, v in report.items() if k != "jobs"}
        merge_service_record(args.record_bench, bench_record)
        print(f"recorded service run in {args.record_bench}")

    total = report["n_submitted"] + parse_rejects
    bad = (report["n_failed"] + report["n_shed"]
           + report["n_cancelled"] + parse_rejects)
    if total > 0 and report["n_done"] == 0:
        return 2  # nothing succeeded — same contract as batch/place
    return 1 if bad else 0


#: Exit codes ``repro submit`` returns per structured shed reason, so a
#: shell wrapper can tell "back off and retry" (queue_full, tenant_quota)
#: from "stop submitting" (draining, closed) without parsing stderr.
SHED_EXIT = {"queue_full": 3, "tenant_quota": 4, "draining": 5, "closed": 6}


def _shed_exit(job_id: str, reason) -> int:
    print(f"shed {job_id}: {reason}", file=sys.stderr)
    return SHED_EXIT.get(str(reason), 1)


def _parse_hostport(value: str):
    host, _, port = value.rpartition(":")
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise SystemExit(f"expected HOST:PORT, got {value!r}")


def _submit_wire(args) -> int:
    from .api import Client

    host, port = _parse_hostport(args.connect)
    source = _batch_source(args)
    with Client.connect(host, port, token=args.tenant) as client:
        handle = client.submit(
            str(source),
            seed=args.seed,
            scale=args.scale,
            utilization=args.utilization,
            legalize=not args.no_legalize,
            max_iterations=args.max_iterations,
            priority=args.priority,
            timeout_seconds=args.timeout,
            job_id=args.id,
        )
        if not handle.admitted:
            return _shed_exit(handle.job_id, handle.shed_reason)
        cached = " (cache hit)" if handle.cached else ""
        print(f"submitted {handle.job_id}{cached}")
        if not args.wait:
            return 0
        record = handle.result(timeout=args.wait_timeout)
        if record is None:
            print(f"timed out waiting for {handle.job_id}", file=sys.stderr)
            return 1
        _print_job_result(record.summary())
        return 0 if record.state.value == "done" else 1


def cmd_submit(args) -> int:
    import json as _json
    import os

    if bool(args.spool) == bool(args.connect):
        raise SystemExit("submit needs exactly one of --spool DIR or "
                         "--connect HOST:PORT")
    if args.connect:
        return _submit_wire(args)
    spool = Path(args.spool)
    incoming = spool / "incoming"
    incoming.mkdir(parents=True, exist_ok=True)
    source = _batch_source(args)
    job_id = args.id or (
        f"{Path(str(source)).stem}-s{args.seed}"
        f"-{os.getpid()}-{time.time_ns() % 1_000_000_000}"
    )
    spec = {
        "id": job_id,
        "source": str(source),
        "seed": args.seed,
        "scale": args.scale,
        "utilization": args.utilization,
        "legalize": not args.no_legalize,
        "priority": args.priority,
        "tenant": args.tenant,
    }
    if args.max_iterations is not None:
        spec["max_iterations"] = args.max_iterations
    if args.timeout is not None:
        spec["timeout_seconds"] = args.timeout
    # Write-tmp-then-rename so the server's glob never sees a torn spec.
    tmp = incoming / f".{job_id}.json.tmp"
    final = incoming / f"{job_id}.json"
    tmp.write_text(
        _json.dumps(spec, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    tmp.replace(final)
    print(f"submitted {job_id} -> {final}")
    if not args.wait:
        return 0
    result_path = spool / "results" / f"{job_id}.json"
    deadline = time.monotonic() + args.wait_timeout
    while time.monotonic() < deadline:
        if result_path.exists():
            summary = _json.loads(result_path.read_text(encoding="utf-8"))
            _print_job_result(summary)
            state = summary.get("state")
            if state == "shed":
                return _shed_exit(job_id, summary.get("reason"))
            return 0 if state == "done" else 1
        time.sleep(0.2)
    print(f"timed out waiting for {result_path}", file=sys.stderr)
    return 1


def cmd_loadgen(args) -> int:
    import json as _json

    from .service.loadgen import LoadgenConfig, run_loadgen

    tenants = {}
    for part in args.tenants.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        tenants[name] = float(weight) if weight else 1.0
    if not tenants:
        raise SystemExit("loadgen needs at least one tenant")
    cfg = LoadgenConfig(
        duration_s=args.duration,
        rps=args.rps,
        tenants=tenants,
        seed=args.seed,
        source=args.source,
        unique_specs=args.unique_specs,
        max_iterations=args.max_iterations,
        legalize=not args.no_legalize,
        drain_timeout_s=args.drain_timeout,
    )

    if args.connect:
        host, port = _parse_hostport(args.connect)
        record = run_loadgen(cfg, host, port)
    else:
        from .service import PlacementServer, ServiceConfig

        config = ServiceConfig(
            workers=args.workers,
            max_queue_depth=args.max_queue_depth,
            tenant_quota=args.tenant_quota,
            cache_bytes=args.cache_bytes,
        )
        with PlacementServer(service_config=config) as server:
            host, port = server.address
            print(f"loadgen: serving on {host}:{port} "
                  f"({args.workers} workers)", flush=True)
            record = run_loadgen(cfg, host, port)

    latency = record["latency"]
    print(f"loadgen         : {record['offered']} offered @ "
          f"{record['offered_rps']:g} rps over {record['wall_seconds']:g}s")
    print(f"completed       : {record['completed']} done "
          f"({record['cache_hits']} cache hits), {record['failed']} failed, "
          f"{record['shed']} shed, {record['errors']} errors, "
          f"{record['timed_out_waiting']} still waiting")
    if latency["n"]:
        print(f"latency         : p50 {latency['p50_s']:.3f}s, "
              f"p99 {latency['p99_s']:.3f}s, p999 {latency['p999_s']:.3f}s "
              f"over {latency['n']} jobs")
    check = record["hash_check"]
    print(f"hash check      : {check['distinct_specs']} distinct specs, "
          f"consistent={check['consistent']}")

    if args.out:
        out = Path(args.out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            _json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    if args.record_bench:
        from .observability.bench import merge_service_record

        merge_service_record(args.record_bench, record)
        print(f"recorded loadgen run in {args.record_bench}")

    # Envelope assertions (the CI smoke): any violation is a non-zero
    # exit so the job fails loudly instead of burying a regression.
    bad = []
    if not check["consistent"]:
        bad.append(f"cache hits not bit-identical: {check}")
    if record["errors"] or record["timed_out_waiting"]:
        bad.append(f"{record['errors']} errors, "
                   f"{record['timed_out_waiting']} jobs never finished")
    if args.assert_p99 is not None and latency["n"] \
            and latency["p99_s"] > args.assert_p99:
        bad.append(f"p99 {latency['p99_s']:.3f}s > {args.assert_p99:g}s")
    if args.assert_shed_rate is not None \
            and (record["shed_rate"] or 0.0) > args.assert_shed_rate:
        bad.append(f"shed rate {record['shed_rate']} > "
                   f"{args.assert_shed_rate:g}")
    if args.assert_min_hits is not None \
            and record["cache_hits"] < args.assert_min_hits:
        bad.append(f"only {record['cache_hits']} cache hits "
                   f"(< {args.assert_min_hits})")
    for line in bad:
        print(f"loadgen FAIL    : {line}", file=sys.stderr)
    return 1 if bad else 0


def cmd_convert(args) -> int:
    netlist, region = _load_design(args)
    placement = (
        load_placement(netlist, args.placement) if args.placement else None
    )
    if not args.bookshelf:
        raise SystemExit("convert needs --bookshelf BASEPATH")
    aux = save_bookshelf(netlist, region, args.bookshelf, placement)
    print(f"wrote {aux} (+ .nodes/.nets/.pl/.scl)")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kraftwerk (DAC 1998) force-directed placement toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print circuit statistics")
    _add_design_args(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_place = sub.add_parser("place", help="run global placement")
    _add_design_args(p_place)
    _add_placer_args(p_place)
    p_place.add_argument("--legalize", action="store_true",
                         help="run final placement (Abacus + improvement)")
    p_place.add_argument("--out", help="basepath for .netlist/.placement output")
    p_place.add_argument("--svg", action="store_true",
                         help="also write an SVG rendering (needs --out)")
    p_place.add_argument("--strict", action="store_true",
                         help="reject repairable netlist defects instead of "
                              "fixing them")
    p_place.set_defaults(func=cmd_place)

    p_batch = sub.add_parser(
        "batch", help="run many jobs of one design over the batch engine"
    )
    _add_design_args(p_batch)
    _add_placer_args(p_batch, checkpointing=False)
    p_batch.add_argument("--jobs", type=int, default=8,
                         help="number of jobs; seeds 0..N-1 (default 8)")
    p_batch.add_argument("--seeds",
                         help="explicit comma-separated seed list "
                              "(overrides --jobs)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: CPU count; "
                              "0 = serial in-process)")
    p_batch.add_argument("--mp-context", default="auto", dest="mp_context",
                         choices=["auto", "fork", "spawn", "forkserver"],
                         help="multiprocessing start method (default auto)")
    p_batch.add_argument("--legalize", action="store_true",
                         help="also legalize each job's placement")
    p_batch.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS", help="per-job wall-clock budget")
    p_batch.add_argument("--checkpoint-dir", metavar="DIR",
                         dest="checkpoint_dir",
                         help="per-job resumable snapshots under DIR")
    p_batch.add_argument("--checkpoint-every", type=int, default=10,
                         metavar="N", help="iterations between snapshots")
    p_batch.add_argument("--resume", action="store_true",
                         help="resume jobs from --checkpoint-dir snapshots")
    p_batch.add_argument("--trace-dir", metavar="DIR", dest="trace_dir",
                         help="write per-job JSONL traces under DIR")
    p_batch.add_argument("--out", help="write the merged batch summary JSON here")
    p_batch.add_argument("--compare-serial", action="store_true",
                         dest="compare_serial",
                         help="also run the batch serially and report the "
                              "measured speedup + HPWL identity check")
    p_batch.add_argument("--record-bench", metavar="PATH", dest="record_bench",
                         help="merge the batch record into this "
                              "BENCH_kraftwerk.json")
    p_batch.set_defaults(func=cmd_batch)

    p_sweep = sub.add_parser(
        "sweep", help="K/net-model/seed parameter sweep over the batch engine"
    )
    _add_design_args(p_sweep)
    p_sweep.add_argument("--K", default="0.2,1.0",
                         help="comma-separated K values (default 0.2,1.0)")
    p_sweep.add_argument("--net-models", default="clique", dest="net_models",
                         help="comma-separated net models (clique,b2b)")
    p_sweep.add_argument("--seeds", default="0",
                         help="comma-separated seed list (default 0)")
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="alternative to --seeds: use seeds 0..N-1")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: CPU count; "
                              "0 = serial in-process)")
    p_sweep.add_argument("--mp-context", default="auto", dest="mp_context",
                         choices=["auto", "fork", "spawn", "forkserver"])
    p_sweep.add_argument("--legalize", action="store_true",
                         help="also legalize each job's placement")
    p_sweep.add_argument("--max-iterations", type=int, default=None,
                         dest="max_iterations", metavar="N")
    p_sweep.add_argument("--out", help="write the sweep summary JSON here")
    p_sweep.set_defaults(func=cmd_sweep)

    p_timing = sub.add_parser("timing", help="longest-path analysis")
    _add_design_args(p_timing)
    p_timing.add_argument("--placement", help="repro placement file")
    p_timing.set_defaults(func=cmd_timing)

    p_route = sub.add_parser("route", help="global-route a placement")
    _add_design_args(p_route)
    p_route.add_argument("--placement", help="repro placement file")
    p_route.add_argument("--bins", type=int, default=24)
    p_route.add_argument("--tracks", type=float, default=12.0,
                         help="routing tracks per grid edge")
    p_route.add_argument("--svg", help="write the congestion map here")
    p_route.set_defaults(func=cmd_route)

    p_bench = sub.add_parser(
        "bench", help="run the telemetry/regression bench suite"
    )
    p_bench.add_argument("--sizes", default=None,
                         help="comma-separated sizes or 'all' "
                              "(default: all of tiny,small,medium)")
    p_bench.add_argument("--size", default=None,
                         choices=["tiny", "small", "medium", "large",
                                  "huge", "all"],
                         help="single size (legacy alias for --sizes)")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", default="BENCH_kraftwerk.json",
                         help="report path (default BENCH_kraftwerk.json)")
    p_bench.add_argument("--profile", action="store_true",
                         help="attach cProfile top-15 cumulative functions "
                              "for the place and legalize phases")
    p_bench.add_argument("--no-legalize", action="store_true",
                         help="skip the final placement step")
    p_bench.add_argument("--trace",
                         help="also write the primary run's JSONL trace here")
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="run the fault-tolerant placement service"
    )
    p_serve.add_argument("--jobs", dest="jobs_file", metavar="FILE",
                         help="JSON jobs file (list of job specs); serve "
                              "them all, drain, and exit")
    p_serve.add_argument("--spool", metavar="DIR",
                         help="watch DIR/incoming/*.json for job specs and "
                              "write DIR/results/<id>.json as jobs finish")
    p_serve.add_argument("--listen", metavar="[HOST:]PORT",
                         help="serve the repro-wire/1 TCP protocol until "
                              "interrupted (see docs/SERVICE.md)")
    p_serve.add_argument("--drain-idle", type=float, default=10.0,
                         dest="drain_idle", metavar="SECONDS",
                         help="spool mode: exit after this long with no "
                              "arrivals and nothing in flight (default 10)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="supervised worker processes (default 2)")
    p_serve.add_argument("--mp-context", default="auto", dest="mp_context",
                         choices=["auto", "fork", "spawn", "forkserver"])
    p_serve.add_argument("--max-queue-depth", type=int, default=64,
                         dest="max_queue_depth", metavar="N",
                         help="admission bound on waiting jobs (default 64)")
    p_serve.add_argument("--tenant-quota", type=int, default=None,
                         dest="tenant_quota", metavar="N",
                         help="max queued+running jobs per tenant "
                              "(default: no quota)")
    p_serve.add_argument("--cache-bytes", type=int,
                         default=256 * 1024 * 1024, dest="cache_bytes",
                         metavar="BYTES",
                         help="result-cache budget; 0 disables the cache "
                              "(default 256 MiB)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         dest="job_timeout", metavar="SECONDS",
                         help="per-job wall-clock watchdog (default: none)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         dest="max_attempts", metavar="N",
                         help="attempts per job incl. the first (default 3)")
    p_serve.add_argument("--retry-on",
                         default="worker_death,timeout,numerical",
                         dest="retry_on",
                         help="comma-separated retryable failure classes "
                              "(default worker_death,timeout,numerical)")
    p_serve.add_argument("--backoff-base", type=float, default=0.05,
                         dest="backoff_base", metavar="SECONDS")
    p_serve.add_argument("--backoff-cap", type=float, default=2.0,
                         dest="backoff_cap", metavar="SECONDS")
    p_serve.add_argument("--checkpoint-dir", metavar="DIR",
                         dest="checkpoint_dir",
                         help="per-job snapshots under DIR (enables "
                              "cross-worker migration on retry)")
    p_serve.add_argument("--checkpoint-every", type=int, default=5,
                         dest="checkpoint_every", metavar="N",
                         help="iterations between snapshots (default 5)")
    p_serve.add_argument("--trace-dir", metavar="DIR", dest="trace_dir",
                         help="per-job JSONL telemetry traces under DIR")
    p_serve.add_argument("--events", metavar="PATH",
                         help="stream lifecycle events to this JSONL file")
    p_serve.add_argument("--out", help="write the service report JSON here")
    p_serve.add_argument("--record-bench", metavar="PATH",
                         dest="record_bench",
                         help="merge the service record into this "
                              "BENCH_kraftwerk.json")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit one job: to a serve --spool directory or over TCP",
    )
    _add_design_args(p_submit)
    p_submit.add_argument("--spool", metavar="DIR",
                          help="the spool directory repro serve watches")
    p_submit.add_argument("--connect", metavar="HOST:PORT",
                          help="submit over the repro-wire/1 protocol to a "
                               "repro serve --listen server")
    p_submit.add_argument("--id", help="job id (default: derived, unique)")
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--max-iterations", type=int, default=None,
                          dest="max_iterations", metavar="N")
    p_submit.add_argument("--no-legalize", action="store_true",
                          dest="no_legalize",
                          help="skip legalization for this job")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="queue priority; lower runs first (default 0)")
    p_submit.add_argument("--tenant", default="default",
                          help="tenant for quota accounting")
    p_submit.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-job wall-clock watchdog override")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll for the result file and print it")
    p_submit.add_argument("--wait-timeout", type=float, default=300.0,
                          dest="wait_timeout", metavar="SECONDS",
                          help="--wait deadline (default 300)")
    p_submit.set_defaults(func=cmd_submit)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load run against the placement service",
    )
    p_loadgen.add_argument("--connect", metavar="HOST:PORT",
                           help="drive an already-listening server "
                                "(default: spawn one for the run)")
    p_loadgen.add_argument("--duration", type=float, default=30.0,
                           metavar="SECONDS",
                           help="arrival-schedule length (default 30)")
    p_loadgen.add_argument("--rps", type=float, default=20.0,
                           help="mean offered arrival rate (default 20)")
    p_loadgen.add_argument("--source", default="tiny",
                           help="bench size every job places (default tiny)")
    p_loadgen.add_argument("--unique-specs", type=int, default=8,
                           dest="unique_specs", metavar="N",
                           help="distinct job seeds rotated through; repeats "
                                "exercise the result cache (default 8)")
    p_loadgen.add_argument("--max-iterations", type=int, default=8,
                           dest="max_iterations", metavar="N",
                           help="per-job iteration cap (default 8)")
    p_loadgen.add_argument("--no-legalize", action="store_true",
                           dest="no_legalize")
    p_loadgen.add_argument("--seed", type=int, default=0,
                           help="schedule RNG seed (default 0)")
    p_loadgen.add_argument("--tenants", default="default",
                           help="tenant mix NAME[=WEIGHT][,...] "
                                "(default: one 'default' tenant)")
    p_loadgen.add_argument("--drain-timeout", type=float, default=60.0,
                           dest="drain_timeout", metavar="SECONDS",
                           help="wait for stragglers after the last arrival "
                                "(default 60)")
    p_loadgen.add_argument("--workers", type=int, default=2,
                           help="spawned server: worker processes "
                                "(default 2)")
    p_loadgen.add_argument("--max-queue-depth", type=int, default=64,
                           dest="max_queue_depth", metavar="N")
    p_loadgen.add_argument("--tenant-quota", type=int, default=None,
                           dest="tenant_quota", metavar="N")
    p_loadgen.add_argument("--cache-bytes", type=int,
                           default=256 * 1024 * 1024, dest="cache_bytes",
                           metavar="BYTES")
    p_loadgen.add_argument("--assert-p99", type=float, default=None,
                           dest="assert_p99", metavar="SECONDS",
                           help="fail (exit 1) if p99 latency exceeds this")
    p_loadgen.add_argument("--assert-shed-rate", type=float, default=None,
                           dest="assert_shed_rate", metavar="FRACTION",
                           help="fail if the shed fraction exceeds this")
    p_loadgen.add_argument("--assert-min-hits", type=int, default=None,
                           dest="assert_min_hits", metavar="N",
                           help="fail with fewer result-cache hits")
    p_loadgen.add_argument("--out", help="write the loadgen record here")
    p_loadgen.add_argument("--record-bench", metavar="PATH",
                           dest="record_bench",
                           help="merge the loadgen record into this "
                                "BENCH_kraftwerk.json")
    p_loadgen.set_defaults(func=cmd_loadgen)

    p_convert = sub.add_parser("convert", help="export to Bookshelf")
    _add_design_args(p_convert)
    p_convert.add_argument("--placement", help="repro placement file")
    p_convert.add_argument("--bookshelf", help="output basepath")
    p_convert.set_defaults(func=cmd_convert)
    return parser


def main(argv: Optional[list] = None) -> int:
    from .perf import tune_allocator

    tune_allocator()
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except NumericalHealthError as exc:
        print(f"error: numerical health check failed: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
