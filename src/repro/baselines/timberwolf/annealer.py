"""TimberWolf-style simulated-annealing row placer [2, 18, 19, 20].

Classic row-based annealing: cells live in standard-cell rows at continuous
x positions; moves displace a cell to a random row/position inside a
shrinking range-limiter window or swap two cells; the cost is

    cost = wirelength (weighted HPWL)
         + lambda_overlap * total pairwise x-overlap within rows
         + lambda_row * total deviation of row fill from the average

with Metropolis acceptance on a geometric cooling schedule.  The optional
``net_weights`` make it the timing-driven variant of [20].

All cost deltas are exact and incremental (only the nets and row neighbors
touched by a move are re-evaluated), which is what makes a Python
implementation usable for benchmark-scale circuits.
"""

from __future__ import annotations

import bisect
import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...evaluation.wirelength import hpwl_meters
from ...geometry import PlacementRegion
from ...netlist import CellKind, Netlist, Placement


@dataclass
class TimberWolfConfig:
    moves_per_cell: int = 8  # moves attempted per cell per temperature
    cooling: float = 0.92
    initial_acceptance: float = 0.85  # sets T0 from the uphill-delta scale
    min_temperature_ratio: float = 1e-4
    max_stages: int = 120
    lambda_overlap: float = 1.0  # per unit overlap length * row height
    lambda_row: float = 0.5
    swap_fraction: float = 0.5  # fraction of moves that are swaps
    seed: int = 42
    verbose: bool = False


@dataclass
class TimberWolfResult:
    placement: Placement
    stages: int
    moves: int
    accepted: int
    initial_cost: float
    final_cost: float
    seconds: float

    @property
    def hpwl_m(self) -> float:
        return hpwl_meters(self.placement)


class _State:
    """Mutable annealing state: row membership and x positions."""

    def __init__(
        self,
        netlist: Netlist,
        region: PlacementRegion,
        placement: Placement,
        weights: np.ndarray,
    ):
        self.nl = netlist
        self.region = region
        self.rows = region.rows
        self.num_rows = len(self.rows)
        self.weights = weights
        self.cells = [
            int(i)
            for i in netlist.movable_indices
            if netlist.cells[i].kind is not CellKind.BLOCK
        ]
        self.x = placement.x.copy()
        self.y = placement.y.copy()
        self.row_of: Dict[int, int] = {}
        self.row_width: List[float] = [0.0] * self.num_rows
        # Assign each cell to the nearest row initially.
        centers = np.array([r.center_y for r in self.rows])
        for i in self.cells:
            r = int(np.argmin(np.abs(centers - self.y[i])))
            self.row_of[i] = r
            self.y[i] = self.rows[r].center_y
            self.row_width[r] += float(netlist.widths[i])
        self.target_row_width = sum(self.row_width) / max(self.num_rows, 1)
        # Per-net pin lists (cell index, dx, dy) for incremental HPWL.
        self.net_pins: List[List[Tuple[int, float, float]]] = [
            [(p.cell, p.dx, p.dy) for p in net.pins] for net in netlist.nets
        ]
        self.cell_nets = [netlist.nets_of_cell(i) for i in range(netlist.num_cells)]
        # Sorted per-row cell lists for overlap queries.
        self.row_cells: List[List[int]] = [[] for _ in range(self.num_rows)]
        for i in self.cells:
            self.row_cells[self.row_of[i]].append(i)
        for lst in self.row_cells:
            lst.sort(key=lambda i: self.x[i])

    # -- cost pieces ---------------------------------------------------
    def net_hpwl(self, j: int) -> float:
        pins = self.net_pins[j]
        first = pins[0]
        xlo = xhi = self.x[first[0]] + first[1]
        ylo = yhi = self.y[first[0]] + first[2]
        for cell, dx, dy in pins[1:]:
            px = self.x[cell] + dx
            py = self.y[cell] + dy
            if px < xlo:
                xlo = px
            elif px > xhi:
                xhi = px
            if py < ylo:
                ylo = py
            elif py > yhi:
                yhi = py
        return float(self.weights[j]) * ((xhi - xlo) + (yhi - ylo))

    def nets_cost(self, nets: Sequence[int]) -> float:
        return sum(self.net_hpwl(j) for j in nets)

    def cell_overlap(self, i: int) -> float:
        """Total x-overlap length of cell *i* with its row neighbors."""
        r = self.row_of[i]
        row = self.row_cells[r]
        w = self.nl.widths
        xlo_i = self.x[i] - w[i] / 2.0
        xhi_i = self.x[i] + w[i] / 2.0
        total = 0.0
        for k in row:
            if k == i:
                continue
            lo = max(xlo_i, self.x[k] - w[k] / 2.0)
            hi = min(xhi_i, self.x[k] + w[k] / 2.0)
            if hi > lo:
                total += hi - lo
        return total

    def total_cost(self) -> float:
        wire = self.nets_cost(range(self.nl.num_nets))
        overlap = sum(self.cell_overlap(i) for i in self.cells) / 2.0
        row_dev = sum(
            abs(wd - self.target_row_width) for wd in self.row_width
        )
        return wire, overlap, row_dev

    # -- mutations -----------------------------------------------------
    def remove_from_row(self, i: int) -> None:
        r = self.row_of[i]
        self.row_cells[r].remove(i)
        self.row_width[r] -= float(self.nl.widths[i])

    def insert_into_row(self, i: int, r: int, x: float) -> None:
        self.row_of[i] = r
        self.x[i] = x
        self.y[i] = self.rows[r].center_y
        lst = self.row_cells[r]
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.x[lst[mid]] < x:
                lo = mid + 1
            else:
                hi = mid
        lst.insert(lo, i)
        self.row_width[r] += float(self.nl.widths[i])


class TimberWolfPlacer:
    """Simulated-annealing standard-cell placer."""

    def __init__(
        self,
        netlist: Netlist,
        region: PlacementRegion,
        config: Optional[TimberWolfConfig] = None,
        net_weights: Optional[np.ndarray] = None,
    ):
        if not region.rows:
            raise ValueError("TimberWolf needs a row-based region")
        self.netlist = netlist
        self.region = region
        self.config = config or TimberWolfConfig()
        self.net_weights = (
            np.ones(netlist.num_nets) if net_weights is None else np.asarray(net_weights)
        )

    # ------------------------------------------------------------------
    def place(self, initial: Optional[Placement] = None) -> TimberWolfResult:
        cfg = self.config
        nl = self.netlist
        t0 = time.perf_counter()
        rng = random.Random(cfg.seed)
        np_rng = np.random.default_rng(cfg.seed)
        start = initial if initial is not None else Placement.random(
            nl, self.region, np_rng
        )
        state = _State(nl, self.region, start, self.net_weights)
        cells = state.cells
        if not cells:
            raise ValueError("no standard cells to anneal")
        lam_ov = cfg.lambda_overlap
        lam_row = cfg.lambda_row

        temperature = self._initial_temperature(state, rng)
        t_min = temperature * cfg.min_temperature_ratio
        bounds = self.region.bounds
        window_w = bounds.width
        window_rows = state.num_rows

        moves = accepted = 0
        wire0, ov0, row0 = state.total_cost()
        initial_cost = wire0 + lam_ov * ov0 + lam_row * row0
        stages = 0
        moves_per_stage = cfg.moves_per_cell * len(cells)
        for _stage in range(cfg.max_stages):
            stages += 1
            stage_accepted = 0
            for _ in range(moves_per_stage):
                moves += 1
                if rng.random() < cfg.swap_fraction and len(cells) > 1:
                    delta, rollback = self._propose_swap(state, rng, lam_ov)
                else:
                    delta, rollback = self._propose_displace(
                        state, rng, lam_ov, lam_row, window_w, window_rows
                    )
                if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
                    accepted += 1
                    stage_accepted += 1
                else:
                    rollback()
            if cfg.verbose:
                print(
                    f"[timberwolf {nl.name}] T={temperature:.3g} "
                    f"acc={stage_accepted / moves_per_stage:.2f}"
                )
            temperature *= cfg.cooling
            # Range limiter: shrink the displacement window with temperature.
            ratio = max(stage_accepted / moves_per_stage, 0.02)
            window_w = max(bounds.width * ratio, 4.0 * float(nl.widths.mean()))
            window_rows = max(1, int(round(state.num_rows * ratio)))
            if temperature < t_min or (stage_accepted == 0 and _stage > 5):
                break

        out = start.copy()
        out.x[:] = state.x
        out.y[:] = state.y
        out.reset_fixed()
        wire1, ov1, row1 = state.total_cost()
        return TimberWolfResult(
            placement=out,
            stages=stages,
            moves=moves,
            accepted=accepted,
            initial_cost=initial_cost,
            final_cost=wire1 + lam_ov * ov1 + lam_row * row1,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    def _initial_temperature(self, state: _State, rng: random.Random) -> float:
        """T0 from the average uphill delta of random probe moves."""
        cfg = self.config
        deltas = []
        for _ in range(min(200, 4 * len(state.cells))):
            delta, _commit = self._propose_displace(
                state,
                rng,
                cfg.lambda_overlap,
                cfg.lambda_row,
                self.region.bounds.width,
                state.num_rows,
            )
            if delta > 0:
                deltas.append(delta)
        if not deltas:
            return 1.0
        avg_up = sum(deltas) / len(deltas)
        return -avg_up / math.log(cfg.initial_acceptance)

    # ------------------------------------------------------------------
    def _propose_displace(
        self,
        state: _State,
        rng: random.Random,
        lam_ov: float,
        lam_row: float,
        window_w: float,
        window_rows: int,
    ):
        nl = self.netlist
        i = state.cells[rng.randrange(len(state.cells))]
        old_r = state.row_of[i]
        old_x = state.x[i]
        new_r = min(
            max(old_r + rng.randint(-window_rows, window_rows), 0),
            state.num_rows - 1,
        )
        half_w = float(nl.widths[i]) / 2.0
        b = self.region.bounds
        new_x = min(
            max(old_x + rng.uniform(-window_w, window_w), b.xlo + half_w),
            b.xhi - half_w,
        )
        nets = state.cell_nets[i]
        before = (
            state.nets_cost(nets)
            + lam_ov * state.cell_overlap(i)
            + lam_row
            * (
                abs(state.row_width[old_r] - state.target_row_width)
                + (
                    abs(state.row_width[new_r] - state.target_row_width)
                    if new_r != old_r
                    else 0.0
                )
            )
        )
        state.remove_from_row(i)
        state.insert_into_row(i, new_r, new_x)
        after = (
            state.nets_cost(nets)
            + lam_ov * state.cell_overlap(i)
            + lam_row
            * (
                abs(state.row_width[old_r] - state.target_row_width)
                + (
                    abs(state.row_width[new_r] - state.target_row_width)
                    if new_r != old_r
                    else 0.0
                )
            )
        )
        delta = after - before

        def rollback() -> None:
            state.remove_from_row(i)
            state.insert_into_row(i, old_r, old_x)

        return delta, rollback

    def _propose_swap(self, state: _State, rng: random.Random, lam_ov: float):
        """Swap the (row, x) slots of two random cells.

        Row fill changes only by the width difference, which the |dev| terms
        track; to keep the delta exact we include both rows' deviations.
        """
        cells = state.cells
        i = cells[rng.randrange(len(cells))]
        j = cells[rng.randrange(len(cells))]
        if i == j:
            return 0.0, lambda: None
        lam_row = self.config.lambda_row
        ri, rj = state.row_of[i], state.row_of[j]
        xi, xj = state.x[i], state.x[j]
        nets = sorted(set(state.cell_nets[i]) | set(state.cell_nets[j]))
        before = (
            state.nets_cost(nets)
            + lam_ov * (state.cell_overlap(i) + state.cell_overlap(j))
            + lam_row
            * (
                abs(state.row_width[ri] - state.target_row_width)
                + (
                    abs(state.row_width[rj] - state.target_row_width)
                    if rj != ri
                    else 0.0
                )
            )
        )
        state.remove_from_row(i)
        state.remove_from_row(j)
        state.insert_into_row(i, rj, xj)
        state.insert_into_row(j, ri, xi)
        after = (
            state.nets_cost(nets)
            + lam_ov * (state.cell_overlap(i) + state.cell_overlap(j))
            + lam_row
            * (
                abs(state.row_width[ri] - state.target_row_width)
                + (
                    abs(state.row_width[rj] - state.target_row_width)
                    if rj != ri
                    else 0.0
                )
            )
        )
        delta = after - before

        def rollback() -> None:
            state.remove_from_row(i)
            state.remove_from_row(j)
            state.insert_into_row(i, ri, xi)
            state.insert_into_row(j, rj, xj)

        return delta, rollback
