"""TimberWolf baseline: row-based simulated-annealing placement."""

from .annealer import TimberWolfConfig, TimberWolfPlacer, TimberWolfResult

__all__ = ["TimberWolfConfig", "TimberWolfPlacer", "TimberWolfResult"]
