"""Fiduccia–Mattheyses min-cut bipartitioning.

The partitioner behind the GORDIAN baseline [7]: single-cell moves with
gain buckets, area-balance constraint, best-prefix rollback, multiple passes
until no pass improves the cut.

The hypergraph is given as a list of nets, each net a list of local cell
ids; the cut metric is the number of nets spanning both sides (unweighted,
as in the classic formulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class FMResult:
    sides: np.ndarray  # 0/1 per local cell
    cut: int
    passes: int


class _GainBuckets:
    """Bucket lists over the integer gain range with a moving max pointer."""

    def __init__(self, max_gain: int):
        self.offset = max_gain
        self.buckets: List[List[int]] = [[] for _ in range(2 * max_gain + 1)]
        self.max_index = -1
        self.position = {}

    def insert(self, cell: int, gain: int) -> None:
        idx = gain + self.offset
        self.buckets[idx].append(cell)
        self.position[cell] = idx
        if idx > self.max_index:
            self.max_index = idx

    def remove(self, cell: int) -> None:
        idx = self.position.pop(cell)
        self.buckets[idx].remove(cell)

    def update(self, cell: int, gain: int) -> None:
        self.remove(cell)
        self.insert(cell, gain)

    def pop_best(self, feasible) -> Optional[int]:
        """Highest-gain cell passing the ``feasible`` predicate."""
        idx = self.max_index
        while idx >= 0:
            bucket = self.buckets[idx]
            for k in range(len(bucket) - 1, -1, -1):
                cell = bucket[k]
                if feasible(cell):
                    bucket.pop(k)
                    del self.position[cell]
                    return cell
            idx -= 1
            if not bucket:
                self.max_index = idx
        return None


def fm_bipartition(
    num_cells: int,
    nets: Sequence[Sequence[int]],
    areas: np.ndarray,
    initial: Optional[np.ndarray] = None,
    balance: float = 0.55,
    max_passes: int = 8,
    rng: Optional[np.random.Generator] = None,
    locked: Optional[np.ndarray] = None,
) -> FMResult:
    """Bipartition cells minimizing net cut under an area balance bound.

    ``balance`` is the maximum fraction of total area either side may hold.
    ``initial`` seeds the partition (e.g. a geometric median split); if
    omitted, an alternating split by area is used.  ``locked`` cells never
    move (terminal propagation pins, pre-assigned cells).
    """
    if not 0.5 <= balance < 1.0:
        raise ValueError("balance must be in [0.5, 1.0)")
    areas = np.asarray(areas, dtype=np.float64)
    if areas.shape != (num_cells,):
        raise ValueError("areas length mismatch")
    rng = rng or np.random.default_rng(0)

    if initial is not None:
        sides = np.asarray(initial, dtype=np.int8).copy()
        if sides.shape != (num_cells,):
            raise ValueError("initial partition length mismatch")
    else:
        order = np.argsort(-areas, kind="stable")
        sides = np.zeros(num_cells, dtype=np.int8)
        totals = [0.0, 0.0]
        for i in order:
            side = 0 if totals[0] <= totals[1] else 1
            sides[i] = side
            totals[side] += areas[i]

    cell_nets: List[List[int]] = [[] for _ in range(num_cells)]
    net_cells: List[List[int]] = []
    for j, net in enumerate(nets):
        members = [c for c in net if 0 <= c < num_cells]
        net_cells.append(members)
        for c in members:
            cell_nets[c].append(j)

    total_area = float(areas.sum())
    # Guarantee at least single-cell slack: with few (or large) cells a
    # literal fractional bound would forbid every move.
    limit = max(balance * total_area, total_area / 2.0 + float(areas.max(initial=0.0)))

    def cut_of(s: np.ndarray) -> int:
        cut = 0
        for members in net_cells:
            if not members:
                continue
            first = s[members[0]]
            if any(s[c] != first for c in members[1:]):
                cut += 1
        return cut

    locked_mask = (
        np.zeros(num_cells, dtype=bool)
        if locked is None
        else np.asarray(locked, dtype=bool)
    )
    if locked_mask.shape != (num_cells,):
        raise ValueError("locked mask length mismatch")

    best_sides = sides.copy()
    best_cut = cut_of(sides)
    passes = 0

    for _ in range(max_passes):
        passes += 1
        improved = _fm_pass(
            sides, areas, cell_nets, net_cells, limit, locked_mask
        )
        current_cut = cut_of(sides)
        if current_cut < best_cut:
            best_cut = current_cut
            best_sides = sides.copy()
        if not improved:
            break
    return FMResult(sides=best_sides, cut=best_cut, passes=passes)


def _fm_pass(
    sides: np.ndarray,
    areas: np.ndarray,
    cell_nets: List[List[int]],
    net_cells: List[List[int]],
    limit: float,
    locked_mask: np.ndarray,
) -> bool:
    """One FM pass: move every cell once, keep the best prefix."""
    num_cells = len(sides)
    side_area = [float(areas[sides == 0].sum()), float(areas[sides == 1].sum())]
    # Per-net side counts.
    counts = np.zeros((len(net_cells), 2), dtype=np.int64)
    for j, members in enumerate(net_cells):
        for c in members:
            counts[j, sides[c]] += 1

    max_deg = max((len(n) for n in cell_nets), default=1)
    buckets = _GainBuckets(max(max_deg, 1))

    def gain_of(cell: int) -> int:
        g = 0
        s = sides[cell]
        for j in cell_nets[cell]:
            if counts[j, s] == 1:
                g += 1  # moving removes this net from the cut
            if counts[j, 1 - s] == 0:
                g -= 1  # moving adds this net to the cut
        return g

    for c in range(num_cells):
        if not locked_mask[c]:
            buckets.insert(c, gain_of(c))

    locked = locked_mask.copy()

    def feasible(cell: int) -> bool:
        s = sides[cell]
        return side_area[1 - s] + areas[cell] <= limit

    gains_sequence: List[int] = []
    moves: List[int] = []
    while True:
        cell = buckets.pop_best(feasible)
        if cell is None:
            break
        s = sides[cell]
        g = gain_of(cell)
        # Apply the move.
        sides[cell] = 1 - s
        side_area[s] -= areas[cell]
        side_area[1 - s] += areas[cell]
        locked[cell] = True
        for j in cell_nets[cell]:
            counts[j, s] -= 1
            counts[j, 1 - s] += 1
        # Refresh gains of unlocked neighbors on the touched nets.  (The
        # classic implementation updates gains incrementally; recomputation
        # over the touched neighborhood is equivalent and much harder to
        # get wrong.)
        refreshed = set()
        for j in cell_nets[cell]:
            for n in net_cells[j]:
                if n != cell and not locked[n] and n not in refreshed:
                    refreshed.add(n)
                    buckets.update(n, gain_of(n))
        gains_sequence.append(g)
        moves.append(cell)

    if not moves:
        return False
    prefix = np.cumsum(gains_sequence)
    best_idx = int(np.argmax(prefix))
    if prefix[best_idx] <= 0:
        # Roll back everything.
        for cell in moves:
            sides[cell] = 1 - sides[cell]
        return False
    # Roll back moves after the best prefix.
    for cell in moves[best_idx + 1 :]:
        sides[cell] = 1 - sides[cell]
    return True
