"""GORDIAN baseline: constrained quadratic placement + min-cut partitioning."""

from .fm import FMResult, fm_bipartition
from .gordian import GordianConfig, GordianPlacer, GordianResult

__all__ = [
    "FMResult",
    "fm_bipartition",
    "GordianConfig",
    "GordianPlacer",
    "GordianResult",
]
