"""GORDIAN-style baseline placer [7, 14].

Quadratic placement under center-of-gravity constraints, alternated with
recursive min-cut partitioning:

1. Solve ``min 1/2 p^T C p + d^T p`` subject to one center-of-gravity
   equality constraint per region (each region's area-weighted mean cell
   position must sit at the region center) — a sparse KKT system.
2. Split every region that still holds more than ``cut_limit`` cells along
   its longer side; the cell bipartition is seeded by the geometric median
   split of the current placement and refined by Fiduccia–Mattheyses
   min-cut; the cut coordinate divides the region area in proportion to the
   two sides' cell areas.
3. Repeat until all regions are small, then hand the (nearly overlap-free)
   global placement to the final placer.

With ``linearize=True`` the net weights are re-derived from the current
placement every level, approximating the linear objective of GORDIAN-L [14].
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ...core.linearization import linearization_factors
from ...core.quadratic import QuadraticSystem
from ...core.solver import solve_kkt
from ...evaluation.wirelength import hpwl_meters
from ...geometry import PlacementRegion, Rect
from ...netlist import Netlist, Placement
from .fm import fm_bipartition


@dataclass
class GordianConfig:
    cut_limit: int = 30  # stop splitting below this many cells per region
    balance: float = 0.55
    fm_passes: int = 6
    linearize: bool = True
    clique_threshold: int = 20
    max_levels: int = 20
    seed: int = 7
    verbose: bool = False


@dataclass
class _Region:
    bounds: Rect
    cells: List[int]  # movable cell indices (netlist numbering)


@dataclass
class GordianResult:
    placement: Placement
    levels: int
    num_regions: int
    seconds: float
    history: List[float] = field(default_factory=list)  # hpwl per level

    @property
    def hpwl_m(self) -> float:
        return hpwl_meters(self.placement)


class GordianPlacer:
    """Constrained-QP + recursive partitioning global placer."""

    def __init__(
        self,
        netlist: Netlist,
        region: PlacementRegion,
        config: Optional[GordianConfig] = None,
        net_weights: Optional[np.ndarray] = None,
    ):
        self.net_weights = net_weights
        if netlist.num_movable == 0:
            raise ValueError("netlist has no movable cells")
        self.netlist = netlist
        self.region = region
        self.config = config or GordianConfig()
        self.system = QuadraticSystem(
            netlist, clique_threshold=self.config.clique_threshold
        )
        self._var_of_cell = {}
        for var, cell in enumerate(netlist.movable_indices):
            self._var_of_cell[int(cell)] = var
        self._gamma = max(1e-6, 0.01 * min(region.width, region.height))

    # ------------------------------------------------------------------
    def place(self) -> GordianResult:
        cfg = self.config
        nl = self.netlist
        t0 = time.perf_counter()
        rng = np.random.default_rng(cfg.seed)
        regions = [
            _Region(bounds=self.region.bounds, cells=[int(i) for i in nl.movable_indices])
        ]
        placement = Placement.at_center(nl, self.region)
        history: List[float] = []
        levels = 0
        for level in range(cfg.max_levels):
            levels += 1
            placement = self._solve_constrained(placement, regions, first=(level == 0))
            history.append(hpwl_meters(placement))
            if cfg.verbose:
                print(
                    f"[gordian {nl.name}] level={level} regions={len(regions)} "
                    f"hpwl={history[-1]:.4f}m"
                )
            oversized = [r for r in regions if len(r.cells) > cfg.cut_limit]
            if not oversized:
                break
            regions = self._split_regions(regions, placement, rng)
        return GordianResult(
            placement=placement,
            levels=levels,
            num_regions=len(regions),
            seconds=time.perf_counter() - t0,
            history=history,
        )

    # ------------------------------------------------------------------
    def _solve_constrained(
        self, placement: Placement, regions: List[_Region], first: bool
    ) -> Placement:
        cfg = self.config
        nl = self.netlist
        if cfg.linearize and not first:
            lin_x, lin_y = linearization_factors(placement, gamma=self._gamma)
        else:
            lin_x = lin_y = None
        system = self.system.assemble(
            net_weights=self.net_weights,
            lin_x=lin_x,
            lin_y=lin_y,
            anchor_weight=1e-6 if nl.num_fixed else 1e-3,
            anchor_xy=self.region.bounds.center,
        )
        A, ux, uy = self._constraints(regions)
        x = solve_kkt(system.Ax, -system.bx, A, ux)
        y = solve_kkt(system.Ay, -system.by, A, uy)
        return self.system.placement_from_vars(x, y, placement)

    def _constraints(self, regions: List[_Region]):
        nl = self.netlist
        rows, cols, vals = [], [], []
        ux = np.zeros(len(regions))
        uy = np.zeros(len(regions))
        for r, reg in enumerate(regions):
            total = float(nl.areas[reg.cells].sum())
            if total <= 0:
                total = 1.0
            for cell in reg.cells:
                rows.append(r)
                cols.append(self._var_of_cell[cell])
                vals.append(float(nl.areas[cell]) / total)
            ux[r] = reg.bounds.cx
            uy[r] = reg.bounds.cy
        A = sp.coo_matrix(
            (vals, (rows, cols)), shape=(len(regions), self.system.n_vars)
        ).tocsr()
        return A, ux, uy

    # ------------------------------------------------------------------
    def _split_regions(
        self,
        regions: List[_Region],
        placement: Placement,
        rng: np.random.Generator,
    ) -> List[_Region]:
        cfg = self.config
        nl = self.netlist
        out: List[_Region] = []
        for reg in regions:
            if len(reg.cells) <= cfg.cut_limit:
                out.append(reg)
                continue
            horizontal = reg.bounds.width >= reg.bounds.height
            coords = (
                placement.x[reg.cells] if horizontal else placement.y[reg.cells]
            )
            areas = nl.areas[reg.cells]
            # Seed: median split along the region's longer dimension.
            order = np.argsort(coords, kind="stable")
            cum = np.cumsum(areas[order])
            half = cum[-1] / 2.0
            seed = np.ones(len(reg.cells), dtype=np.int8)
            seed[order[cum <= half]] = 0
            nets = self._induced_nets(reg.cells)
            result = fm_bipartition(
                num_cells=len(reg.cells),
                nets=nets,
                areas=areas,
                initial=seed,
                balance=cfg.balance,
                max_passes=cfg.fm_passes,
                rng=rng,
            )
            side0 = [c for c, s in zip(reg.cells, result.sides) if s == 0]
            side1 = [c for c, s in zip(reg.cells, result.sides) if s == 1]
            if not side0 or not side1:
                out.append(reg)
                continue
            frac = float(nl.areas[side0].sum()) / float(nl.areas[reg.cells].sum())
            b = reg.bounds
            if horizontal:
                cut = b.xlo + frac * b.width
                lo = Rect.from_bounds(b.xlo, b.ylo, cut, b.yhi)
                hi = Rect.from_bounds(cut, b.ylo, b.xhi, b.yhi)
            else:
                cut = b.ylo + frac * b.height
                lo = Rect.from_bounds(b.xlo, b.ylo, b.xhi, cut)
                hi = Rect.from_bounds(b.xlo, cut, b.xhi, b.yhi)
            out.append(_Region(bounds=lo, cells=side0))
            out.append(_Region(bounds=hi, cells=side1))
        return out

    def _induced_nets(self, cells: List[int]) -> List[List[int]]:
        """Nets restricted to the region's cells, in local numbering."""
        local = {cell: k for k, cell in enumerate(cells)}
        seen_nets = set()
        nets: List[List[int]] = []
        for cell in cells:
            for j in self.netlist.nets_of_cell(cell):
                if j in seen_nets:
                    continue
                seen_nets.add(j)
                members = [
                    local[p.cell]
                    for p in self.netlist.nets[j].pins
                    if p.cell in local
                ]
                members = sorted(set(members))
                if len(members) >= 2:
                    nets.append(members)
        return nets
