"""SPEED-style timing-driven baseline (Riess & Ettelt [21]).

SPEED is a net-based timing-driven placer: path constraints are transformed
into static net weights that a (partitioning-based) quadratic placement then
consumes.  Our stand-in follows the same mechanism: place without weights,
run a timing analysis, derive slack-based net weights once per round, and
re-place with them.  The contrast with the paper's approach — which adapts
weights before *every* placement transformation and can therefore react to
the placement as it evolves — is exactly the comparison Tables 3 and 4 make.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..evaluation.wirelength import hpwl_meters
from ..geometry import PlacementRegion
from ..netlist import Netlist, Placement
from ..timing import ElmoreModel, STAResult, StaticTimingAnalyzer
from .gordian import GordianConfig, GordianPlacer


@dataclass
class SpeedConfig:
    rounds: int = 2  # place -> analyze -> reweight cycles
    max_weight: float = 6.0
    sharpness: float = 2.0  # how steeply weights grow as slack vanishes
    gordian: GordianConfig = field(default_factory=GordianConfig)


@dataclass
class SpeedResult:
    placement: Placement
    sta: STAResult
    rounds: int
    seconds: float
    weights: np.ndarray

    @property
    def max_delay_ns(self) -> float:
        return self.sta.max_delay_ns

    @property
    def hpwl_m(self) -> float:
        return hpwl_meters(self.placement)


def slack_weights(
    sta: STAResult, max_weight: float = 6.0, sharpness: float = 2.0
) -> np.ndarray:
    """Static net weights from slacks: critical nets get heavy weights.

    ``w = 1 + (max_weight - 1) * ((T - slack) / T) ** sharpness`` clamped to
    ``[1, max_weight]``, with ``T`` the analysis requirement — the classic
    net-based transformation of path criticality into weights [8, 21].
    """
    T = max(sta.requirement_ns, 1e-9)
    slack = np.clip(sta.net_slack_ns, 0.0, T)
    crit = np.clip((T - slack) / T, 0.0, 1.0)
    finite = sta.net_slack_ns < 1e29
    weights = np.ones(len(slack))
    weights[finite] = 1.0 + (max_weight - 1.0) * crit[finite] ** sharpness
    return weights


class SpeedPlacer:
    """Timing-driven placement via one-shot (per round) net weighting."""

    def __init__(
        self,
        netlist: Netlist,
        region: PlacementRegion,
        config: Optional[SpeedConfig] = None,
        model: Optional[ElmoreModel] = None,
        max_timing_degree: int = 60,
    ):
        self.netlist = netlist
        self.region = region
        self.config = config or SpeedConfig()
        self.analyzer = StaticTimingAnalyzer(
            netlist, model=model, max_timing_degree=max_timing_degree
        )

    def place(self) -> SpeedResult:
        cfg = self.config
        t0 = time.perf_counter()
        weights: Optional[np.ndarray] = None
        placement: Optional[Placement] = None
        sta: Optional[STAResult] = None
        rounds = 0
        for _round in range(cfg.rounds):
            rounds += 1
            placer = GordianPlacer(
                self.netlist, self.region, cfg.gordian, net_weights=weights
            )
            placement = placer.place().placement
            sta = self.analyzer.analyze(placement)
            weights = slack_weights(
                sta, max_weight=cfg.max_weight, sharpness=cfg.sharpness
            )
        assert placement is not None and sta is not None and weights is not None
        return SpeedResult(
            placement=placement,
            sta=sta,
            rounds=rounds,
            seconds=time.perf_counter() - t0,
            weights=weights,
        )
