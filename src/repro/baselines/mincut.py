"""Pure min-cut recursive bisection placement (Dunlop & Kernighan [3]).

The classic first-generation partitioning placer the paper classifies under
"hierarchical subdivision ... with a min-cut objective": recursively split
the region (alternating cut direction with the longer side), bipartition the
cells of each region with Fiduccia–Mattheyses, and finally drop every
region's cells at its center.  No analytical solve at all — this is the
baseline that shows what the quadratic objective adds on top of pure
partitioning.

Terminal propagation: pins outside a region bias its bipartition by being
projected onto the region boundary and counted as fixed-side net members —
without it, recursive bisection ignores global connectivity entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..evaluation.wirelength import hpwl_meters
from ..geometry import PlacementRegion, Rect
from ..netlist import Netlist, Placement
from .gordian.fm import fm_bipartition


@dataclass
class MinCutConfig:
    cut_limit: int = 8  # stop splitting below this many cells
    balance: float = 0.55
    fm_passes: int = 6
    terminal_propagation: bool = True
    seed: int = 11


@dataclass
class _Region:
    bounds: Rect
    cells: List[int]


@dataclass
class MinCutResult:
    placement: Placement
    levels: int
    num_regions: int
    seconds: float

    @property
    def hpwl_m(self) -> float:
        return hpwl_meters(self.placement)


class MinCutPlacer:
    """Recursive FM bisection placement."""

    def __init__(
        self,
        netlist: Netlist,
        region: PlacementRegion,
        config: Optional[MinCutConfig] = None,
    ):
        if netlist.num_movable == 0:
            raise ValueError("netlist has no movable cells")
        self.netlist = netlist
        self.region = region
        self.config = config or MinCutConfig()

    def place(self) -> MinCutResult:
        cfg = self.config
        nl = self.netlist
        t0 = time.perf_counter()
        rng = np.random.default_rng(cfg.seed)
        placement = Placement.at_center(nl, self.region)
        regions = [
            _Region(self.region.bounds, [int(i) for i in nl.movable_indices])
        ]
        levels = 0
        while any(len(r.cells) > cfg.cut_limit for r in regions):
            levels += 1
            regions = self._split_all(regions, placement, rng)
            # Drop cells at their region centers so terminal propagation at
            # the next level sees the current assignment.
            for reg in regions:
                placement.x[reg.cells] = reg.bounds.cx
                placement.y[reg.cells] = reg.bounds.cy
            if levels > 30:
                break
        placement.reset_fixed()
        return MinCutResult(
            placement=placement,
            levels=levels,
            num_regions=len(regions),
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    def _split_all(
        self,
        regions: List[_Region],
        placement: Placement,
        rng: np.random.Generator,
    ) -> List[_Region]:
        out: List[_Region] = []
        for reg in regions:
            if len(reg.cells) <= self.config.cut_limit:
                out.append(reg)
                continue
            out.extend(self._split_one(reg, placement, rng))
        return out

    def _split_one(
        self,
        reg: _Region,
        placement: Placement,
        rng: np.random.Generator,
    ) -> List[_Region]:
        nl = self.netlist
        cfg = self.config
        horizontal = reg.bounds.width >= reg.bounds.height
        local = {cell: k for k, cell in enumerate(reg.cells)}
        n_local = len(reg.cells)

        # Induced hypergraph with terminal propagation: outside pins become
        # two virtual fixed vertices (low side, high side).
        LOW, HIGH = n_local, n_local + 1
        nets: List[List[int]] = []
        seen = set()
        mid = reg.bounds.cx if horizontal else reg.bounds.cy
        for cell in reg.cells:
            for j in nl.nets_of_cell(cell):
                if j in seen:
                    continue
                seen.add(j)
                members = set()
                for pin in nl.nets[j].pins:
                    if pin.cell in local:
                        members.add(local[pin.cell])
                    elif cfg.terminal_propagation:
                        coord = (
                            placement.x[pin.cell]
                            if horizontal
                            else placement.y[pin.cell]
                        )
                        members.add(LOW if coord < mid else HIGH)
                if len(members) >= 2:
                    nets.append(sorted(members))

        areas = np.ones(n_local + 2)
        areas[:n_local] = nl.areas[reg.cells]
        areas[LOW] = areas[HIGH] = 0.0
        initial = np.zeros(n_local + 2, dtype=np.int8)
        # Seed by current coordinate so cut direction aligns with geometry.
        coords = (
            placement.x[reg.cells] if horizontal else placement.y[reg.cells]
        )
        order = np.argsort(coords, kind="stable")
        cum = np.cumsum(areas[:n_local][order])
        initial[order[cum > cum[-1] / 2.0]] = 1
        initial[LOW], initial[HIGH] = 0, 1

        locked = np.zeros(n_local + 2, dtype=bool)
        locked[LOW] = locked[HIGH] = True
        result = fm_bipartition(
            num_cells=n_local + 2,
            nets=nets,
            areas=areas,
            initial=initial,
            balance=cfg.balance,
            max_passes=cfg.fm_passes,
            rng=rng,
            locked=locked,
        )
        sides = result.sides
        side0 = [reg.cells[k] for k in range(n_local) if sides[k] == 0]
        side1 = [reg.cells[k] for k in range(n_local) if sides[k] == 1]
        if not side0 or not side1:
            half = len(reg.cells) // 2
            side0, side1 = reg.cells[:half], reg.cells[half:]
        frac = float(nl.areas[side0].sum()) / float(nl.areas[reg.cells].sum())
        frac = min(max(frac, 0.1), 0.9)
        b = reg.bounds
        if horizontal:
            cut = b.xlo + frac * b.width
            lo = Rect.from_bounds(b.xlo, b.ylo, cut, b.yhi)
            hi = Rect.from_bounds(cut, b.ylo, b.xhi, b.yhi)
        else:
            cut = b.ylo + frac * b.height
            lo = Rect.from_bounds(b.xlo, b.ylo, b.xhi, cut)
            hi = Rect.from_bounds(b.xlo, cut, b.xhi, b.yhi)
        return [_Region(lo, side0), _Region(hi, side1)]
