"""Baseline placers the paper compares against, reimplemented from scratch."""

from .gordian import (
    FMResult,
    GordianConfig,
    GordianPlacer,
    GordianResult,
    fm_bipartition,
)
from .mincut import MinCutConfig, MinCutPlacer, MinCutResult
from .timberwolf import TimberWolfConfig, TimberWolfPlacer, TimberWolfResult
from .speed import SpeedConfig, SpeedPlacer, SpeedResult, slack_weights

__all__ = [
    "FMResult",
    "GordianConfig",
    "GordianPlacer",
    "GordianResult",
    "fm_bipartition",
    "MinCutConfig",
    "MinCutPlacer",
    "MinCutResult",
    "TimberWolfConfig",
    "TimberWolfPlacer",
    "TimberWolfResult",
    "SpeedConfig",
    "SpeedPlacer",
    "SpeedResult",
    "slack_weights",
]
