"""Axis-aligned rectangle primitive used throughout the placer.

All geometry in this library lives in a continuous 2-D plane measured in
microns.  A :class:`Rect` is a half-open box ``[xlo, xhi) x [ylo, yhi)`` in
spirit, although overlap computations treat boundaries as measure-zero so the
distinction only matters for point-containment queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle given by its lower-left corner and size."""

    xlo: float
    ylo: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                f"Rect requires non-negative size, got {self.width} x {self.height}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_bounds(cls, xlo: float, ylo: float, xhi: float, yhi: float) -> "Rect":
        """Build a rectangle from corner coordinates."""
        return cls(xlo, ylo, xhi - xlo, yhi - ylo)

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its center point and size."""
        return cls(cx - width / 2.0, cy - height / 2.0, width, height)

    # ------------------------------------------------------------------
    # Derived coordinates
    # ------------------------------------------------------------------
    @property
    def xhi(self) -> float:
        return self.xlo + self.width

    @property
    def yhi(self) -> float:
        return self.ylo + self.height

    @property
    def cx(self) -> float:
        return self.xlo + self.width / 2.0

    @property
    def cy(self) -> float:
        return self.ylo + self.height / 2.0

    @property
    def center(self) -> Tuple[float, float]:
        return (self.cx, self.cy)

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def half_perimeter(self) -> float:
        return self.width + self.height

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return self.width == 0.0 or self.height == 0.0

    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies in the half-open box [lo, hi)."""
        return self.xlo <= x < self.xhi and self.ylo <= y < self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True if *other* lies entirely inside this rectangle (closed)."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if the open interiors intersect (shared edges don't count)."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping region, or ``None`` if the interiors are disjoint."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xhi <= xlo or yhi <= ylo:
            return None
        return Rect.from_bounds(xlo, ylo, xhi, yhi)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0.0 when disjoint)."""
        w = min(self.xhi, other.xhi) - max(self.xlo, other.xlo)
        h = min(self.yhi, other.yhi) - max(self.ylo, other.ylo)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        return Rect.from_bounds(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by *margin* on every side (shrunk if negative)."""
        new_w = self.width + 2.0 * margin
        new_h = self.height + 2.0 * margin
        if new_w < 0.0 or new_h < 0.0:
            raise ValueError(f"margin {margin} would invert rect {self}")
        return Rect(self.xlo - margin, self.ylo - margin, new_w, new_h)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.xlo + dx, self.ylo + dy, self.width, self.height)

    def clamp_point(self, x: float, y: float) -> Tuple[float, float]:
        """Nearest point inside the rectangle (closed)."""
        return (min(max(x, self.xlo), self.xhi), min(max(y, self.ylo), self.yhi))

    def distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from ``(x, y)`` to the rectangle (0 inside)."""
        px, py = self.clamp_point(x, y)
        return math.hypot(x - px, y - py)


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Smallest rectangle covering all *rects*; raises on empty input."""
    it: Iterator[Rect] = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("bounding_box of no rectangles") from None
    xlo, ylo, xhi, yhi = first.xlo, first.ylo, first.xhi, first.yhi
    for r in it:
        xlo = min(xlo, r.xlo)
        ylo = min(ylo, r.ylo)
        xhi = max(xhi, r.xhi)
        yhi = max(yhi, r.yhi)
    return Rect.from_bounds(xlo, ylo, xhi, yhi)


def total_overlap_area(rects: Iterable[Rect]) -> float:
    """Sum of pairwise overlap areas (O(n^2); for tests and small inputs)."""
    rect_list = list(rects)
    total = 0.0
    for i, a in enumerate(rect_list):
        for b in rect_list[i + 1 :]:
            total += a.overlap_area(b)
    return total
