"""Geometry primitives: rectangles, rows, placement regions, bin grids."""

from .rect import Rect, bounding_box, total_overlap_area
from .region import PlacementRegion
from .rows import Row, make_rows, nearest_row
from .grid import (
    Grid,
    summed_area_table,
    window_sums,
    largest_empty_square_side,
)

__all__ = [
    "Rect",
    "bounding_box",
    "total_overlap_area",
    "PlacementRegion",
    "Row",
    "make_rows",
    "nearest_row",
    "Grid",
    "summed_area_table",
    "window_sums",
    "largest_empty_square_side",
]
