"""The placement region: the chip area cells must be distributed over.

The paper describes the placement area as a rectangle of width ``W`` and
height ``H`` whose area function ``A(x, y)`` supplies free space to the
density model (Eq. 4).  For standard-cell designs the region is additionally
divided into horizontal rows of fixed pitch; the row structure is consumed by
the legalizers and the row-based annealer but is irrelevant to the global
placer, which treats the region as a homogeneous rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .rect import Rect
from .rows import Row, make_rows


@dataclass(frozen=True)
class PlacementRegion:
    """Rectangular placement area, optionally with standard-cell rows.

    Parameters
    ----------
    bounds:
        The chip rectangle.  ``bounds.width`` is the paper's ``W`` and
        ``bounds.height`` its ``H``.
    rows:
        Standard-cell rows covering (part of) the region.  Empty for pure
        block/floorplanning designs.
    """

    bounds: Rect
    rows: List[Row] = field(default_factory=list)

    @classmethod
    def standard_cell(
        cls,
        width: float,
        height: float,
        row_height: float,
        xlo: float = 0.0,
        ylo: float = 0.0,
    ) -> "PlacementRegion":
        """A region fully tiled with rows of pitch *row_height*."""
        bounds = Rect(xlo, ylo, width, height)
        return cls(bounds=bounds, rows=make_rows(bounds, row_height))

    @property
    def width(self) -> float:
        return self.bounds.width

    @property
    def height(self) -> float:
        return self.bounds.height

    @property
    def area(self) -> float:
        return self.bounds.area

    @property
    def half_perimeter(self) -> float:
        """``W + H`` — the paper's reference length for force scaling."""
        return self.bounds.half_perimeter

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def row_height(self) -> float:
        if not self.rows:
            raise ValueError("region has no rows")
        return self.rows[0].height

    def row_capacity(self) -> float:
        """Total placeable width over all rows."""
        return sum(row.width for row in self.rows)

    def clamp(self, x: float, y: float) -> tuple:
        """Nearest point inside the region."""
        return self.bounds.clamp_point(x, y)

    def contains(self, rect: Rect) -> bool:
        return self.bounds.contains_rect(rect)
