"""Rectangular bin grid used for density maps and emptiness queries.

The density model of the paper (Eq. 4) is continuous; we discretize it on a
uniform grid of bins.  Each cell contributes its *exact* overlap area to every
bin it touches (fractional coverage, not center-point snapping), so the
discrete density converges to the continuous one as the grid is refined.

The grid also answers the paper's stopping-criterion query: *the largest empty
square inside the placement area* (Section 4.2: iteration stops once no empty
square larger than four times the average cell area remains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from .rect import Rect


@dataclass(frozen=True)
class Grid:
    """A uniform ``ny x nx`` grid of bins over a rectangle.

    Arrays indexed by this grid use the ``[iy, ix]`` (row-major, y first)
    convention so they print the way a floorplan reads.
    """

    bounds: Rect
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid needs positive bin counts, got {self.nx} x {self.ny}")
        if self.bounds.is_empty():
            raise ValueError("grid over an empty rectangle")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def square_bins(cls, bounds: Rect, target_bin: float) -> "Grid":
        """Grid whose bins are approximately *target_bin* wide squares."""
        if target_bin <= 0:
            raise ValueError("target_bin must be positive")
        nx = max(1, int(round(bounds.width / target_bin)))
        ny = max(1, int(round(bounds.height / target_bin)))
        return cls(bounds, nx, ny)

    # ------------------------------------------------------------------
    # Bin geometry
    # ------------------------------------------------------------------
    @property
    def dx(self) -> float:
        return self.bounds.width / self.nx

    @property
    def dy(self) -> float:
        return self.bounds.height / self.ny

    @property
    def bin_area(self) -> float:
        return self.dx * self.dy

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.ny, self.nx)

    def x_edges(self) -> np.ndarray:
        return self.bounds.xlo + self.dx * np.arange(self.nx + 1)

    def y_edges(self) -> np.ndarray:
        return self.bounds.ylo + self.dy * np.arange(self.ny + 1)

    def x_centers(self) -> np.ndarray:
        return self.bounds.xlo + self.dx * (np.arange(self.nx) + 0.5)

    def y_centers(self) -> np.ndarray:
        return self.bounds.ylo + self.dy * (np.arange(self.ny) + 0.5)

    def zeros(self) -> np.ndarray:
        return np.zeros(self.shape, dtype=np.float64)

    def bin_of(self, x: float, y: float) -> Tuple[int, int]:
        """``(iy, ix)`` of the bin containing the point, clamped to the grid."""
        ix = int(np.clip((x - self.bounds.xlo) / self.dx, 0, self.nx - 1))
        iy = int(np.clip((y - self.bounds.ylo) / self.dy, 0, self.ny - 1))
        return (iy, ix)

    def bin_rect(self, iy: int, ix: int) -> Rect:
        return Rect(
            self.bounds.xlo + ix * self.dx,
            self.bounds.ylo + iy * self.dy,
            self.dx,
            self.dy,
        )

    # ------------------------------------------------------------------
    # Rasterization
    # ------------------------------------------------------------------
    def coverage_1d(
        self, lo: float, hi: float, axis: str
    ) -> Tuple[int, np.ndarray]:
        """Per-bin overlap lengths of the interval ``[lo, hi]`` along *axis*.

        Returns ``(first_index, lengths)`` where ``lengths[k]`` is the overlap
        of the interval with bin ``first_index + k``.  The interval is clipped
        to the grid; an interval fully outside yields an empty array.
        """
        if axis == "x":
            origin, step, count = self.bounds.xlo, self.dx, self.nx
        elif axis == "y":
            origin, step, count = self.bounds.ylo, self.dy, self.ny
        else:
            raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
        lo = max(lo, origin)
        hi = min(hi, origin + step * count)
        if hi <= lo:
            return (0, np.zeros(0))
        i0 = int((lo - origin) / step)
        i1 = int(np.ceil((hi - origin) / step))
        i0 = min(max(i0, 0), count - 1)
        i1 = min(max(i1, i0 + 1), count)
        edges = origin + step * np.arange(i0, i1 + 1)
        lengths = np.minimum(edges[1:], hi) - np.maximum(edges[:-1], lo)
        return (i0, np.maximum(lengths, 0.0))

    def add_rect(self, array: np.ndarray, rect: Rect, scale: float = 1.0) -> None:
        """Add ``scale`` times the rect's per-bin overlap *area* into *array*."""
        ix0, wx = self.coverage_1d(rect.xlo, rect.xhi, "x")
        iy0, wy = self.coverage_1d(rect.ylo, rect.yhi, "y")
        if wx.size == 0 or wy.size == 0:
            return
        array[iy0 : iy0 + wy.size, ix0 : ix0 + wx.size] += scale * np.outer(wy, wx)

    def paint_rects(
        self,
        xlo: np.ndarray,
        ylo: np.ndarray,
        widths: np.ndarray,
        heights: np.ndarray,
        weights: Optional[np.ndarray] = None,
        max_span: int = 16,
    ) -> np.ndarray:
        """Area map of many rectangles given by corner/size arrays.

        ``weights`` scales each rectangle's contribution (default 1: plain
        area).  Shapes of all inputs must match.

        Rectangles spanning at most ``max_span`` bins per axis are
        rasterized in one vectorized pass (separable fractional coverage
        scattered with ``bincount``); wider ones — rare macros and pads —
        fall back to the per-rect path, so the cost stays proportional to
        touched bins either way.
        """
        out = self.zeros()
        xlo = np.asarray(xlo, dtype=np.float64)
        ylo = np.asarray(ylo, dtype=np.float64)
        widths = np.asarray(widths, dtype=np.float64)
        heights = np.asarray(heights, dtype=np.float64)
        n = xlo.size
        if n == 0:
            return out
        w = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        b = self.bounds
        x0 = np.maximum(xlo, b.xlo)
        x1 = np.minimum(xlo + widths, b.xhi)
        y0 = np.maximum(ylo, b.ylo)
        y1 = np.minimum(ylo + heights, b.yhi)
        valid = (x1 > x0) & (y1 > y0)
        ix0 = np.clip(((x0 - b.xlo) / self.dx).astype(np.int64), 0, self.nx - 1)
        iy0 = np.clip(((y0 - b.ylo) / self.dy).astype(np.int64), 0, self.ny - 1)
        ix1 = np.clip(
            np.ceil((x1 - b.xlo) / self.dx).astype(np.int64), ix0 + 1, self.nx
        )
        iy1 = np.clip(
            np.ceil((y1 - b.ylo) / self.dy).astype(np.int64), iy0 + 1, self.ny
        )
        span_x = ix1 - ix0
        span_y = iy1 - iy0
        bulk = valid & (span_x <= max_span) & (span_y <= max_span)
        for i in np.flatnonzero(valid & ~bulk):
            self.add_rect(
                out,
                Rect(float(xlo[i]), float(ylo[i]), float(widths[i]), float(heights[i])),
                float(w[i]),
            )
        sel = np.flatnonzero(bulk)
        if sel.size == 0:
            return out
        ux = int(span_x[sel].max())
        uy = int(span_y[sel].max())
        # Separable per-bin coverage: edges are computed unclamped so bins
        # past a rect's span get exactly zero length, which lets the bin
        # indices be clamped into range without adding spurious area.
        ex = b.xlo + self.dx * (ix0[sel, None] + np.arange(ux + 1)[None, :])
        ey = b.ylo + self.dy * (iy0[sel, None] + np.arange(uy + 1)[None, :])
        cov_x = np.maximum(
            np.minimum(x1[sel, None], ex[:, 1:]) - np.maximum(x0[sel, None], ex[:, :-1]),
            0.0,
        )
        cov_y = np.maximum(
            np.minimum(y1[sel, None], ey[:, 1:]) - np.maximum(y0[sel, None], ey[:, :-1]),
            0.0,
        )
        contrib = w[sel, None, None] * cov_y[:, :, None] * cov_x[:, None, :]
        bx = np.minimum(ix0[sel, None] + np.arange(ux)[None, :], self.nx - 1)
        by = np.minimum(iy0[sel, None] + np.arange(uy)[None, :], self.ny - 1)
        flat = (by[:, :, None] * self.nx + bx[:, None, :]).ravel()
        out += np.bincount(
            flat, weights=contrib.ravel(), minlength=self.nx * self.ny
        ).reshape(self.shape)
        return out


def summed_area_table(array: np.ndarray) -> np.ndarray:
    """Inclusive 2-D prefix sums with a zero border row/column prepended."""
    sat = np.zeros((array.shape[0] + 1, array.shape[1] + 1), dtype=np.float64)
    np.cumsum(array, axis=0, out=sat[1:, 1:])
    np.cumsum(sat[1:, 1:], axis=1, out=sat[1:, 1:])
    return sat


def window_sums(sat: np.ndarray, k: int) -> np.ndarray:
    """Sums of all ``k x k`` windows given a summed-area table."""
    if k <= 0:
        raise ValueError("window size must be positive")
    ny, nx = sat.shape[0] - 1, sat.shape[1] - 1
    if k > ny or k > nx:
        return np.zeros((0, 0))
    return (
        sat[k:, k:]
        - sat[:-k, k:]
        - sat[k:, :-k]
        + sat[:-k, :-k]
    )


def largest_empty_square_side(
    occupancy: np.ndarray, bin_side: float, tol_area: float = 0.0
) -> float:
    """Side length (in model units) of the largest empty square window.

    ``occupancy`` holds covered area per bin on a grid of *square* bins of
    side ``bin_side``.  A ``k x k`` bin window counts as empty when its total
    covered area is at most ``tol_area``.  Binary-searches the largest such
    ``k`` (window emptiness is monotone in ``k``) and returns ``k*bin_side``.
    """
    sat = summed_area_table(occupancy)
    max_k = min(occupancy.shape)

    def window_is_empty(k: int) -> bool:
        sums = window_sums(sat, k)
        return sums.size > 0 and bool((sums <= tol_area).any())

    if max_k == 0 or not window_is_empty(1):
        return 0.0
    lo, hi = 1, max_k
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if window_is_empty(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo * bin_side
