"""Standard-cell rows.

Rows are horizontal strips of fixed height into which the legalizer snaps
cells.  The global placer ignores them; TimberWolf-style annealing and the
Domino-style final placement operate on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .rect import Rect


@dataclass(frozen=True)
class Row:
    """One standard-cell row."""

    index: int
    xlo: float
    y: float  # bottom edge of the row
    width: float
    height: float

    @property
    def xhi(self) -> float:
        return self.xlo + self.width

    @property
    def yhi(self) -> float:
        return self.y + self.height

    @property
    def center_y(self) -> float:
        return self.y + self.height / 2.0

    @property
    def bounds(self) -> Rect:
        return Rect(self.xlo, self.y, self.width, self.height)


def make_rows(bounds: Rect, row_height: float) -> List[Row]:
    """Tile *bounds* bottom-up with rows of pitch *row_height*.

    A trailing strip narrower than one pitch is left uncovered, matching how
    real floorplans drop fractional rows.
    """
    if row_height <= 0:
        raise ValueError(f"row_height must be positive, got {row_height}")
    count = int(bounds.height / row_height + 1e-9)
    return [
        Row(
            index=i,
            xlo=bounds.xlo,
            y=bounds.ylo + i * row_height,
            width=bounds.width,
            height=row_height,
        )
        for i in range(count)
    ]


def nearest_row(rows: List[Row], y: float) -> Row:
    """The row whose vertical center is closest to *y*."""
    if not rows:
        raise ValueError("no rows")
    return min(rows, key=lambda row: abs(row.center_y - y))
