"""ECO / incremental placement (Section 5).

Place a circuit, apply a small netlist change (new buffer cells and a gate
resize), and re-place incrementally: the surviving cells barely move, and
the new cells integrate near their neighbors.

Run:  python examples/eco_incremental.py [circuit] [scale]
"""

import sys

from repro import (
    Cell,
    KraftwerkPlacer,
    NetlistDelta,
    eco_place,
    hpwl_meters,
    make_circuit,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "primary1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    circuit = make_circuit(name, scale=scale)
    netlist, region = circuit.netlist, circuit.region

    base = KraftwerkPlacer(netlist, region).place()
    print(f"base placement: {base.hpwl_m:.4f} m in {base.iterations} iterations")

    # The ECO: three new buffer cells spliced near existing logic, and one
    # cell upsized (gate sizing).
    targets = [netlist.cells[i].name for i in netlist.movable_indices[:3]]
    resized = netlist.cells[netlist.movable_indices[5]].name
    delta = NetlistDelta(
        add_cells=[Cell(f"buf{i}", 35.0, 100.0, delay=0.1) for i in range(3)],
        add_nets=[
            (f"bufnet{i}", [(f"buf{i}", "output"), (targets[i], "input")], 1.0)
            for i in range(3)
        ],
        resize_cells={resized: netlist.cell_by_name(resized).width * 1.8},
    )
    print(f"ECO: +3 buffers, resize {resized} x1.8")

    result = eco_place(netlist, base.placement, delta, region)
    print(f"incremental re-place: {result.hpwl_m:.4f} m "
          f"({result.result.iterations} transformations)")
    dim = min(region.width, region.height)
    print(f"disturbance of surviving cells: mean {result.mean_disturbance:.1f} um "
          f"({100 * result.mean_disturbance / dim:.1f}% of die), "
          f"max {result.max_disturbance:.1f} um")


if __name__ == "__main__":
    main()
