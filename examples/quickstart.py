"""Quickstart: generate a circuit, place it, legalize it, report quality.

Run:  python examples/quickstart.py [circuit] [scale]
e.g.  python examples/quickstart.py primary1 0.3
"""

import sys

from repro import (
    KraftwerkPlacer,
    Placement,
    PlacerConfig,
    distribution_stats,
    final_placement,
    hpwl_meters,
    make_circuit,
    total_overlap,
)

import numpy as np


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "primary1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    circuit = make_circuit(name, scale=scale)
    netlist, region = circuit.netlist, circuit.region
    print(f"circuit {netlist.name}: {netlist.num_movable} movable cells, "
          f"{netlist.num_nets} nets, die {region.width:.0f} x {region.height:.0f} um")

    # Random placement as a reference point.
    random_p = Placement.random(netlist, region, np.random.default_rng(0))
    print(f"random placement      : {hpwl_meters(random_p):.4f} m")

    # Global placement: the paper's iterative force-directed algorithm.
    placer = KraftwerkPlacer(netlist, region, PlacerConfig.standard())
    result = placer.place()
    print(f"global placement      : {result.hpwl_m:.4f} m "
          f"({result.iterations} transformations, "
          f"converged={result.converged}, {result.seconds:.1f}s)")

    stats = distribution_stats(result.placement, region)
    print(f"  distribution        : peak density {stats.max_density:.2f}, "
          f"largest empty square {stats.empty_square_ratio:.1f}x avg cell")

    # Final placement: Abacus legalization + greedy detailed improvement.
    legal = final_placement(result.placement, region)
    print(f"final placement       : {hpwl_meters(legal):.4f} m "
          f"(overlap {total_overlap(legal):.2f} um^2)")


if __name__ == "__main__":
    main()
