"""Gate sizing with incremental re-placement (Section 5's ECO interaction).

Each round, the cells on the critical path are upsized (faster, bigger,
hungrier), and the placement absorbs the footprint change incrementally —
the disturbance of unrelated cells stays small while the longest path
shrinks.

Run:  python examples/gate_sizing.py [circuit] [scale]
"""

import sys

from repro import KraftwerkPlacer, StaticTimingAnalyzer, make_circuit
from repro.eco import GateSizingOptimizer, SizingConfig
from repro.timing import timing_summary


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "struct"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    circuit = make_circuit(name, scale=scale)
    netlist, region = circuit.netlist, circuit.region

    base = KraftwerkPlacer(netlist, region).place()
    print(f"base placement: {base.hpwl_m:.4f} m")
    print()

    optimizer = GateSizingOptimizer(netlist, region, SizingConfig(max_rounds=5))
    result = optimizer.optimize(base.placement)
    print(f"longest path {result.initial_delay_ns:.3f} ns -> "
          f"{result.final_delay_ns:.3f} ns "
          f"({result.improvement_percent:.1f}% via gate sizing)")
    for r in result.rounds:
        print(f"  round {r.round}: {r.delay_ns:.3f} ns, "
              f"{len(r.resized)} gates resized, "
              f"mean disturbance {r.mean_disturbance:.0f} um, "
              f"hpwl {r.hpwl_m:.4f} m")
    print()
    print(timing_summary(result.netlist, result.placement))


if __name__ == "__main__":
    main()
