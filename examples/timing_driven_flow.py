"""Timing-driven placement: optimization and requirement meeting (Section 5).

Shows the three timing flows of the paper:

1. plain placement and its longest-path analysis,
2. timing *optimization* (net criticalities re-weighted every placement
   transformation),
3. *meeting* a timing requirement with the two-phase flow, printing the
   recorded timing/area trade-off curve.

Run:  python examples/timing_driven_flow.py [circuit] [scale]
"""

import sys

from repro import (
    KraftwerkPlacer,
    StaticTimingAnalyzer,
    TimingDrivenPlacer,
    exploitation_percent,
    make_circuit,
    meet_timing_requirement,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "struct"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    circuit = make_circuit(name, scale=scale)
    netlist, region = circuit.netlist, circuit.region

    analyzer = StaticTimingAnalyzer(netlist)
    lower_bound = analyzer.lower_bound_ns()
    print(f"{netlist.name}: zero-wire lower bound {lower_bound:.2f} ns")

    # 1. Plain placement.
    plain = KraftwerkPlacer(netlist, region).place()
    sta = analyzer.analyze(plain.placement)
    print(f"plain placement : {sta.max_delay_ns:.2f} ns, {plain.hpwl_m:.4f} m")
    path = " -> ".join(netlist.cells[i].name for i in sta.critical_path[:8])
    print(f"  critical path : {path}{' ...' if len(sta.critical_path) > 8 else ''}")

    # 2. Timing optimization.
    timed = TimingDrivenPlacer(netlist, region).place()
    print(f"timing-driven   : {timed.max_delay_ns:.2f} ns, {timed.hpwl_m:.4f} m")
    if sta.max_delay_ns > lower_bound:
        print(f"  exploitation  : "
              f"{exploitation_percent(sta.max_delay_ns, timed.max_delay_ns, lower_bound):.0f}%"
              f" of the optimization potential")

    # 3. Meet a requirement between plain and optimized delay.
    requirement = (sta.max_delay_ns + timed.max_delay_ns) / 2.0
    result = meet_timing_requirement(netlist, region, requirement_ns=requirement)
    print(f"requirement     : {requirement:.2f} ns -> met={result.met}, "
          f"achieved {result.achieved_ns:.2f} ns at {result.hpwl_m:.4f} m")
    print("trade-off curve (step, hpwl m, delay ns):")
    for point in result.tradeoff:
        print(f"  {point.step:3d}  {point.hpwl_m:.4f}  {point.max_delay_ns:.2f}")


if __name__ == "__main__":
    main()
