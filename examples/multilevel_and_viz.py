"""Multilevel placement + visualization outputs.

Places a mid-size circuit both flat and through the two-level clustering
flow, compares them, and writes SVG renderings (placement, density map,
convergence curves) to ./out/.

Run:  python examples/multilevel_and_viz.py [circuit] [scale]
"""

import sys
import time
from pathlib import Path

from repro import KraftwerkPlacer, Telemetry, make_circuit
from repro.core import MultilevelPlacer
from repro.evaluation import compare_placements, occupancy_map, summarize_placement
from repro.geometry import Grid
from repro.viz import ascii_placement, curve_svg, heatmap_svg, placement_svg, sparkline


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "biomed"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    circuit = make_circuit(name, scale=scale)
    netlist, region = circuit.netlist, circuit.region
    out = Path("out")
    out.mkdir(exist_ok=True)

    # Per-iteration HPWL is an observability statistic, computed only when
    # someone is watching — a real telemetry recorder opts the run in, so
    # the convergence curves below have data.
    t0 = time.time()
    flat = KraftwerkPlacer(netlist, region, telemetry=Telemetry()).place()
    t_flat = time.time() - t0
    t0 = time.time()
    multi = MultilevelPlacer(
        netlist, region, levels=2, telemetry=Telemetry()
    ).place()
    t_multi = time.time() - t0

    print(f"flat       : {flat.hpwl_m:.4f} m in {t_flat:.1f}s "
          f"({flat.iterations} transformations)")
    print(f"multilevel : {multi.hpwl_m:.4f} m in {t_multi:.1f}s "
          f"({multi.levels} coarsening levels)")
    diff = compare_placements(flat.placement, multi.placement)
    print(f"the two placements differ by {diff.mean_displacement:.0f} um on "
          f"average ({diff.hpwl_delta_percent:+.1f}% wire length)")

    summary = summarize_placement(multi.placement, region, with_timing=True)
    print(f"multilevel summary: mst {summary.mst_m:.4f} m, "
          f"peak density {summary.max_density:.2f}, "
          f"longest path {summary.max_delay_ns:.2f} ns")

    # Convergence sparkline + SVG artifacts.
    flat_curve = [s.hpwl_m for s in flat.history]
    print(f"flat hpwl per iteration: {sparkline(flat_curve)}")

    placement_svg(multi.placement, region, out / f"{name}_placement.svg")
    grid = Grid.square_bins(region.bounds, max(region.width, region.height) / 64)
    density = occupancy_map(multi.placement, region, grid=grid) / grid.bin_area
    heatmap_svg(grid, density, out / f"{name}_density.svg")
    curve_svg(
        [("flat hpwl [m]", flat_curve),
         ("refine hpwl [m]", [s.hpwl_m for s in multi.refine_result.history])],
        out / f"{name}_convergence.svg",
    )
    print(f"wrote {out}/{name}_placement.svg, _density.svg, _convergence.svg")
    print()
    print(ascii_placement(multi.placement, region, cols=64, rows=16))


if __name__ == "__main__":
    main()
