"""Mixed block/cell floorplanning (Section 5) with an ASCII floorplan view.

Blocks are just big cells during global placement; the back end separates
blocks, snaps them to the row grid and legalizes standard cells into the
row segments around them.

Run:  python examples/floorplanning_mixed.py [scale] [num_blocks]
"""

import sys

from repro import (
    Grid,
    MixedSizePlacer,
    make_mixed_size_circuit,
    total_overlap,
)
from repro.evaluation import occupancy_map
from repro.netlist import CellKind


def ascii_floorplan(result, circuit, cols: int = 64, rows: int = 20) -> str:
    """Character map: '#' block, '.' cells, ' ' empty."""
    region = circuit.region
    grid = Grid(region.bounds, cols, rows)
    occ = occupancy_map(result.placement, region, grid=grid)
    lines = []
    for iy in range(rows - 1, -1, -1):
        line = []
        for ix in range(cols):
            cell_rect = grid.bin_rect(iy, ix)
            in_block = any(cell_rect.overlaps(b) for b in result.block_rects)
            if in_block:
                line.append("#")
            elif occ[iy, ix] > 0.25 * grid.bin_area:
                line.append(".")
            else:
                line.append(" ")
        lines.append("".join(line))
    return "\n".join(lines)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    num_blocks = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    circuit = make_mixed_size_circuit(scale=scale, num_blocks=num_blocks)
    netlist = circuit.netlist
    blocks = netlist.blocks()
    cell_count = netlist.num_movable - len(blocks)
    print(f"mixed design: {cell_count} cells + {len(blocks)} movable blocks "
          f"({sum(b.area for b in blocks) / netlist.movable_area():.0%} of area)")

    result = MixedSizePlacer(netlist, circuit.region).place()
    print(f"floorplanned in {result.seconds:.1f}s: hpwl {result.hpwl_m:.4f} m, "
          f"block overlap {result.block_overlap:.1f} um^2, "
          f"total overlap {total_overlap(result.placement):.1f} um^2")
    print()
    print(ascii_floorplan(result, circuit))


if __name__ == "__main__":
    main()
