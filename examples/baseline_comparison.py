"""Head-to-head: every placer in the library on one circuit.

Runs the paper's approach (standard + fast mode), GORDIAN, TimberWolf,
pure min-cut bisection, and the multilevel extension through the same
final-placement pipeline and prints a comparison table.

Run:  python examples/baseline_comparison.py [circuit] [scale]
"""

import sys
import time

from repro import (
    GordianPlacer,
    KraftwerkPlacer,
    PlacerConfig,
    TimberWolfConfig,
    TimberWolfPlacer,
    final_placement,
    hpwl_meters,
    make_circuit,
)
from repro.baselines import MinCutPlacer
from repro.core import MultilevelPlacer
from repro.evaluation import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "primary1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    circuit = make_circuit(name, scale=scale)
    netlist, region = circuit.netlist, circuit.region
    print(f"{netlist.name}: {netlist.num_movable} cells, {netlist.num_nets} nets\n")

    runs = [
        ("ours (K=0.2)", lambda: KraftwerkPlacer(netlist, region, PlacerConfig.standard()).place().placement),
        ("ours fast (K=1.0)", lambda: KraftwerkPlacer(netlist, region, PlacerConfig.fast()).place().placement),
        ("ours multilevel", lambda: MultilevelPlacer(netlist, region, levels=2).place().placement),
        ("gordian", lambda: GordianPlacer(netlist, region).place().placement),
        ("mincut bisection", lambda: MinCutPlacer(netlist, region).place().placement),
        ("timberwolf (SA)", lambda: TimberWolfPlacer(netlist, region, TimberWolfConfig(moves_per_cell=4, max_stages=60)).place().placement),
    ]
    rows = []
    best = None
    for label, fn in runs:
        t0 = time.time()
        global_p = fn()
        legal = final_placement(global_p, region, use_domino=True)
        wl = hpwl_meters(legal)
        rows.append([label, wl, time.time() - t0])
        if best is None or wl < best:
            best = wl
    for row in rows:
        row.append(100.0 * (row[1] - best) / best)
    print(format_table(
        ["placer", "final wl [m]", "seconds", "vs best %"],
        rows,
        title="all placers, identical final-placement pipeline",
        float_digits=3,
    ))


if __name__ == "__main__":
    main()
