"""Congestion- and heat-driven placement (Section 5).

Both applications reuse the same mechanism: an extra map (routing overflow
resp. power excess) is folded into the supply/demand density, and the
Poisson forces push cells away from the pressured regions.

Run:  python examples/congestion_and_heat.py [circuit] [scale]
"""

import sys

from repro import (
    CongestionDrivenPlacer,
    HeatDrivenPlacer,
    KraftwerkPlacer,
    make_circuit,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "primary1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    circuit = make_circuit(name, scale=scale)
    netlist, region = circuit.netlist, circuit.region

    base = KraftwerkPlacer(netlist, region).place()

    # --- congestion ----------------------------------------------------
    driven = CongestionDrivenPlacer(
        netlist, region, capacity_layers=0.5, congestion_weight=2.0
    )
    congested = driven.place()
    base_est = driven.router.estimate(base.placement)
    print("congestion-driven placement (tight routing capacity):")
    print(f"  plain : overflow {base_est.total_overflow:9.0f}, "
          f"max utilization {base_est.max_utilization:.2f}, "
          f"{base.hpwl_m:.4f} m")
    print(f"  driven: overflow {congested.total_overflow:9.0f}, "
          f"max utilization {congested.estimate.max_utilization:.2f}, "
          f"{congested.result.hpwl_m:.4f} m")

    # --- heat ----------------------------------------------------------
    # Make a contiguous module run hot (40x power), then spread it.
    movable = list(netlist.movable_indices)
    hot = movable[10:50]
    for i in hot:
        netlist.cells[i].power *= 40.0
    heat = HeatDrivenPlacer(netlist, region, heat_weight=2.0)
    cooled = heat.place()
    base_hot = KraftwerkPlacer(netlist, region).place()
    base_thermal = heat.model.solve(base_hot.placement)
    print("heat-driven placement (one 40-cell module at 40x power):")
    print(f"  plain : peak T {base_thermal.peak_temperature:8.1f}, "
          f"{base_hot.hpwl_m:.4f} m")
    print(f"  driven: peak T {cooled.peak_temperature:8.1f}, "
          f"{cooled.result.hpwl_m:.4f} m")
    for i in hot:
        netlist.cells[i].power /= 40.0


if __name__ == "__main__":
    main()
